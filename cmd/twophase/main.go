// Command twophase runs the two-phase model-selection pipeline end to end:
// build (or load) the offline performance matrix, then select a model for
// a target dataset, reporting the recalled candidates, the per-stage
// survivors, the winner, and the epoch cost against the BF/SH baselines.
//
// Usage:
//
//	twophase -task nlp -target tweet_eval [-seed 42] [-k 10]
//	         [-store DIR] [-baselines] [-list-targets]
//
// With -store, the offline matrix is persisted to (and reused from) a
// store directory, demonstrating the §VII model-management extension.
package main

import (
	"context"

	"flag"
	"fmt"
	"os"
	"strings"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/selection"
	"twophase/internal/store"
	"twophase/internal/trainer"
)

func main() {
	task := flag.String("task", datahub.TaskNLP, `task family: "nlp" or "cv"`)
	target := flag.String("target", "", "target dataset name (see -list-targets)")
	seed := flag.Uint64("seed", 42, "world seed")
	k := flag.Int("k", 0, "number of models to recall (0 = paper default 10)")
	storeDir := flag.String("store", "", "artifact store directory (optional)")
	baselines := flag.Bool("baselines", false, "also run brute-force and successive-halving baselines")
	listTargets := flag.Bool("list-targets", false, "list target datasets for the task and exit")
	plan := flag.Bool("plan", false, "print the cost model's strategy plan and exit (no training)")
	flag.Parse()

	if *plan {
		if err := printPlan(*task, *k); err != nil {
			fmt.Fprintln(os.Stderr, "twophase:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*task, *target, *seed, *k, *storeDir, *baselines, *listTargets); err != nil {
		fmt.Fprintln(os.Stderr, "twophase:", err)
		os.Exit(1)
	}
}

// printPlan uses the Shift-style cost model (selection.CheapestStrategy)
// to predict strategy costs before any training is spent.
func printPlan(task string, k int) error {
	hp := trainer.Default(task)
	pools := []int{40, 10}
	if task == datahub.TaskCV {
		pools[0] = 30
	}
	if k > 0 {
		pools[1] = k
	}
	for _, pool := range pools {
		bf := selection.PredictBruteForceEpochs(pool, hp.Epochs)
		sh := selection.PredictSHEpochs(pool, hp.Epochs, 1)
		lo, hi := selection.PredictFSEpochsRange(pool, hp.Epochs, 1)
		best, cost := selection.CheapestStrategy(pool, hp.Epochs, 1, true)
		fmt.Printf("pool %2d models x %d epochs: BF=%d SH=%d FS=[%d,%d] -> %s (~%d epochs)\n",
			pool, hp.Epochs, bf, sh, lo, hi, best, cost)
	}
	return nil
}

func run(task, target string, seed uint64, k int, storeDir string, baselines, listTargets bool) error {
	opts := core.Options{Task: task, Seed: seed}
	if k > 0 {
		opts.Recall.K = k
	}
	fw, err := core.Build(opts)
	if err != nil {
		return err
	}

	if listTargets {
		for _, d := range fw.Catalog.Targets() {
			fmt.Printf("%-40s %d classes  %s\n", d.Name, d.Classes, d.Description)
		}
		return nil
	}
	if target == "" {
		return fmt.Errorf("missing -target (use -list-targets to see options)")
	}

	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			return err
		}
		if err := st.PutMatrix(task, fw.Matrix); err != nil {
			return err
		}
		fmt.Printf("offline matrix (%d models x %d benchmarks) persisted to %s\n",
			len(fw.Matrix.Models), len(fw.Matrix.Datasets), storeDir)
	}

	d, err := fw.Catalog.Get(target)
	if err != nil {
		return err
	}
	report, err := fw.Select(context.Background(), d)
	if err != nil {
		return err
	}

	fmt.Printf("target: %s (%d classes)\n", d.Name, d.Classes)
	fmt.Printf("coarse recall: %d clusters, %d proxy inferences, recalled %d models:\n",
		report.Recall.Clustering.K, report.Recall.ScoredModels, len(report.Recall.Recalled))
	for i, name := range report.Recall.Recalled {
		fmt.Printf("  %2d. %-60s recall score %.3f\n", i+1, name, report.Recall.RecallScores[name])
	}
	fmt.Println("fine selection stages:")
	for stage, pool := range report.Outcome.Stages {
		fmt.Printf("  epoch %d: %2d models (%s)\n", stage+1, len(pool), strings.Join(shorten(pool, 3), ", "))
	}
	fmt.Printf("winner: %s\n", report.Outcome.Winner)
	fmt.Printf("  final validation accuracy: %.3f\n", report.Outcome.WinnerVal)
	fmt.Printf("  held-out test accuracy:    %.3f\n", report.Outcome.WinnerTest)
	fmt.Printf("cost: %s\n", report.Ledger.String())

	if baselines {
		bf, err := fw.BruteForce(context.Background(), d)
		if err != nil {
			return err
		}
		sh, err := fw.SuccessiveHalving(context.Background(), d)
		if err != nil {
			return err
		}
		fmt.Printf("baselines over all %d models:\n", fw.Repo.Len())
		fmt.Printf("  brute force:        %3d epochs, winner %s (test %.3f)\n",
			bf.Ledger.TrainEpochs(), bf.Winner, bf.WinnerTest)
		fmt.Printf("  successive halving: %3d epochs, winner %s (test %.3f)\n",
			sh.Ledger.TrainEpochs(), sh.Winner, sh.WinnerTest)
		fmt.Printf("  two-phase speedup:  %.2fx vs BF, %.2fx vs SH\n",
			float64(bf.Ledger.TrainEpochs())/report.TotalEpochs(),
			float64(sh.Ledger.TrainEpochs())/report.TotalEpochs())
	}
	return nil
}

func shorten(pool []string, max int) []string {
	out := make([]string, 0, max+1)
	for i, n := range pool {
		if i == max {
			out = append(out, fmt.Sprintf("+%d more", len(pool)-max))
			break
		}
		if idx := strings.LastIndex(n, "/"); idx >= 0 {
			n = n[idx+1:]
		}
		out = append(out, n)
	}
	return out
}
