package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunListTargets(t *testing.T) {
	if err := run("nlp", "", 42, 0, "", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingTarget(t *testing.T) {
	if err := run("nlp", "", 42, 0, "", false, false); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestRunUnknownTask(t *testing.T) {
	if err := run("audio", "x", 42, 0, "", false, false); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestRunUnknownTarget(t *testing.T) {
	if err := run("nlp", "no-such-dataset", 42, 0, "", false, false); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestRunEndToEndWithStore(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	dir := t.TempDir()
	if err := run("nlp", "tweet_eval", 42, 5, dir, false, false); err != nil {
		t.Fatal(err)
	}
	// the offline matrix must have been persisted (binary codec)
	path := filepath.Join(dir, "matrices", "nlp.bin")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("store missing matrix: %v", err)
	}
}

func TestShorten(t *testing.T) {
	got := shorten([]string{"a/b", "c/d", "e", "f", "g"}, 3)
	if len(got) != 4 || got[0] != "b" || got[3] != "+2 more" {
		t.Fatalf("shorten = %v", got)
	}
}

func TestPrintPlan(t *testing.T) {
	if err := printPlan("nlp", 0); err != nil {
		t.Fatal(err)
	}
	if err := printPlan("cv", 8); err != nil {
		t.Fatal(err)
	}
}
