// Command loadgen replays a synthetic selection workload against a
// serving endpoint (apiserver or gateway) at a fixed open-loop rate and
// reports the latency distribution plus the admission outcome mix as one
// JSON document — the load half of the anytime-selection story: requests
// carry a per-request budget, the server answers 200 truncated under the
// budget and sheds typed 429/503 refusals past its limits.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8090 [flags]
//
// Flags:
//
//	-addr URL        target base URL (required)
//	-task NAME       task family (default nlp)
//	-targets LIST    comma-separated target datasets (default tweet_eval)
//	-rate R          open-loop request rate, req/s (default 50)
//	-duration D      run length (default 10s)
//	-concurrency N   max in-flight requests; arrivals past it are counted
//	                 as local drops, not sent (default 256)
//	-strategy S      selection strategy per request (default two-phase)
//	-max-epochs N    per-request epoch budget (-1 = unbounded; default 0,
//	                 the cheapest anytime request)
//	-deadline-ms N   per-request deadline budget (0 = none)
//	-client ID       X-Client-Id header (default "loadgen")
//	-priority N      X-Priority header (0 = omitted)
//	-retries N       extra attempts for Retryable refusals, honoring the
//	                 server's Retry-After hint (default 0)
//	-out FILE        JSON report path (default BENCH_load.json)
//	-strict          exit nonzero when any request fails with an untyped
//	                 (internal) error — refusals and sheds are expected
//	                 under saturation, 500s never are
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twophase/internal/api"
)

type config struct {
	addr        string
	task        string
	targets     string
	rate        float64
	duration    time.Duration
	concurrency int
	strategy    string
	maxEpochs   int
	deadlineMS  int64
	client      string
	priority    int
	retries     int
	out         string
	strict      bool
}

// report is the emitted JSON document: the outcome mix and the latency
// distribution of every completed request (successes and refusals alike —
// a shed answered in 2ms is the behavior under test).
type report struct {
	Addr        string  `json:"addr"`
	Task        string  `json:"task"`
	Strategy    string  `json:"strategy"`
	RateRPS     float64 `json:"rate_rps"`
	DurationMS  int64   `json:"duration_ms"`
	Concurrency int     `json:"concurrency"`

	Sent        int64 `json:"sent"`
	LocalDrops  int64 `json:"local_drops"`
	OK          int64 `json:"ok"`
	Truncated   int64 `json:"truncated"`
	RateLimited int64 `json:"rate_limited"`
	Overloaded  int64 `json:"overloaded"`
	Unavailable int64 `json:"unavailable"`
	Canceled    int64 `json:"canceled"`
	Internal    int64 `json:"internal"`

	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyMS     latency `json:"latency_ms"`
	OKLatencyMS   latency `json:"ok_latency_ms"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "", "target base URL (required)")
	flag.StringVar(&cfg.task, "task", "nlp", "task family")
	flag.StringVar(&cfg.targets, "targets", "tweet_eval", "comma-separated target datasets")
	flag.Float64Var(&cfg.rate, "rate", 50, "open-loop request rate, req/s")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length")
	flag.IntVar(&cfg.concurrency, "concurrency", 256, "max in-flight requests")
	flag.StringVar(&cfg.strategy, "strategy", "", "selection strategy (empty = server default)")
	flag.IntVar(&cfg.maxEpochs, "max-epochs", 0, "per-request epoch budget (-1 = unbounded)")
	flag.Int64Var(&cfg.deadlineMS, "deadline-ms", 0, "per-request deadline budget in ms (0 = none)")
	flag.StringVar(&cfg.client, "client", "loadgen", "X-Client-Id header")
	flag.IntVar(&cfg.priority, "priority", 0, "X-Priority header (0 = omitted)")
	flag.IntVar(&cfg.retries, "retries", 0, "extra attempts for retryable refusals")
	flag.StringVar(&cfg.out, "out", "BENCH_load.json", "JSON report path")
	flag.BoolVar(&cfg.strict, "strict", false, "exit nonzero on any internal (untyped) error")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// headerTransport stamps the admission headers on every request.
type headerTransport struct {
	base     http.RoundTripper
	client   string
	priority int
}

func (h headerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if h.client != "" {
		r.Header.Set(api.ClientIDHeader, h.client)
	}
	if h.priority != 0 {
		r.Header.Set(api.PriorityHeader, fmt.Sprint(h.priority))
	}
	return h.base.RoundTrip(r)
}

func run(cfg config) error {
	if cfg.addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if cfg.rate <= 0 || cfg.duration <= 0 || cfg.concurrency <= 0 {
		return fmt.Errorf("-rate, -duration and -concurrency must be positive")
	}
	var targets []string
	for _, t := range strings.Split(cfg.targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-targets is empty")
	}

	hc := &http.Client{Transport: headerTransport{
		base: http.DefaultTransport, client: cfg.client, priority: cfg.priority,
	}}
	client := api.NewClient(cfg.addr, hc)

	req := &api.SelectRequest{Task: cfg.task, Targets: targets,
		SelectOptions: api.SelectOptions{Strategy: cfg.strategy, DeadlineMS: cfg.deadlineMS}}
	if cfg.maxEpochs >= 0 {
		me := cfg.maxEpochs
		req.MaxEpochs = &me
	}

	rep := &report{Addr: cfg.addr, Task: cfg.task, Strategy: cfg.strategy,
		RateRPS: cfg.rate, Concurrency: cfg.concurrency}
	var mu sync.Mutex
	var all, oks []time.Duration
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.concurrency)

	fire := func() {
		defer wg.Done()
		defer func() { <-sem }()
		start := time.Now()
		var resp *api.SelectResponse
		var err error
		if cfg.retries > 0 {
			resp, err = client.SelectRetry(context.Background(), req, cfg.retries+1)
		} else {
			resp, err = client.Select(context.Background(), req)
		}
		elapsed := time.Since(start)
		mu.Lock()
		all = append(all, elapsed)
		if err == nil {
			oks = append(oks, elapsed)
		}
		mu.Unlock()
		switch {
		case err == nil:
			atomic.AddInt64(&rep.OK, 1)
			atomic.AddInt64(&rep.Truncated, int64(resp.Truncated))
		case errors.Is(err, api.ErrRateLimited):
			atomic.AddInt64(&rep.RateLimited, 1)
		case errors.Is(err, api.ErrOverloaded):
			atomic.AddInt64(&rep.Overloaded, 1)
		case errors.Is(err, api.ErrUnavailable):
			atomic.AddInt64(&rep.Unavailable, 1)
		case errors.Is(err, api.ErrCanceled):
			atomic.AddInt64(&rep.Canceled, 1)
		default:
			atomic.AddInt64(&rep.Internal, 1)
		}
	}

	// Open loop: arrivals tick at the configured rate regardless of how
	// slowly the server answers — that is what drives it into admission
	// control. The concurrency cap only protects this process; an arrival
	// finding it full is a local drop, recorded, never silently skipped.
	interval := time.Duration(float64(time.Second) / cfg.rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(cfg.duration)
	begin := time.Now()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				rep.Sent++
				wg.Add(1)
				go fire()
			default:
				rep.LocalDrops++
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	rep.DurationMS = elapsed.Milliseconds()
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.OK) / secs
	}
	rep.LatencyMS = summarize(all)
	rep.OKLatencyMS = summarize(oks)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: sent %d (drops %d) ok %d truncated %d rate_limited %d overloaded %d canceled %d internal %d\n",
		rep.Sent, rep.LocalDrops, rep.OK, rep.Truncated, rep.RateLimited, rep.Overloaded, rep.Canceled, rep.Internal)
	fmt.Printf("loadgen: latency p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms; %.1f ok/s; report -> %s\n",
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max, rep.ThroughputRPS, cfg.out)
	if cfg.strict && rep.Internal > 0 {
		return fmt.Errorf("%d requests failed with internal errors under -strict", rep.Internal)
	}
	return nil
}

// summarize renders a latency sample set as nearest-rank percentiles in
// milliseconds.
func summarize(samples []time.Duration) latency {
	if len(samples) == 0 {
		return latency{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(p float64) float64 {
		rank := int(p/100*float64(len(samples))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		return float64(samples[rank]) / float64(time.Millisecond)
	}
	return latency{
		P50: pick(50),
		P95: pick(95),
		P99: pick(99),
		Max: float64(samples[len(samples)-1]) / float64(time.Millisecond),
	}
}
