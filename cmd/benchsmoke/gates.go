package main

// The ratio gates of the smoke, extracted so they can refuse bad inputs
// loudly and be unit-tested. The historical bug these guards fix: a
// baseline or measured field that is 0, NaN or missing made `got > max`
// false and the gate "passed" — a zero build_ms_serial in the baseline
// would have made any regression look fine. Every gate now validates both
// sides first and fails the smoke on non-finite or non-positive input
// instead of waving it through.

import (
	"fmt"
	"math"
)

// finitePositive rejects a measurement or baseline field that cannot
// anchor a ratio gate: zero (missing from the JSON), negative, NaN or
// infinite. The error says to re-record the baseline, because that is the
// usual cause.
func finitePositive(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("%s is %v: zero, missing or non-finite values void the gate (re-record the baseline with -write)", name, v)
	}
	return nil
}

// calibrationScale is the machine-speed ratio the thresholds scale by.
// Unlike the old silent fallback to 1.0, a missing or degenerate
// calibration on either side fails the smoke — an unscaled gate on a
// machine of unknown speed is not a gate.
func calibrationScale(baseNs, measuredNs float64) (float64, error) {
	if err := finitePositive("baseline calibration ns/op", baseNs); err != nil {
		return 0, err
	}
	if err := finitePositive("measured calibration ns/op", measuredNs); err != nil {
		return 0, err
	}
	return measuredNs / baseNs, nil
}

// checkCeiling gates a lower-is-better metric: got must stay within
// base x scale x (1 + tol).
func checkCeiling(name, unit string, got, base, scale, tol float64) error {
	if err := finitePositive(name+" baseline", base); err != nil {
		return err
	}
	if err := finitePositive(name+" measured", got); err != nil {
		return err
	}
	max := base * scale * (1 + tol)
	if got > max {
		return fmt.Errorf("%s regressed: %.0f%s > %.0f%s (baseline %.0f x calibration %.2f x %.2f)",
			name, got, unit, max, unit, base, scale, 1+tol)
	}
	fmt.Printf("benchsmoke: %s ok: %.0f%s <= %.0f%s\n", name, got, unit, max, unit)
	return nil
}

// checkFloor gates a higher-is-better throughput metric: the calibration
// ratio divides, so a slower machine lowers the floor instead of raising
// a ceiling. A missing baseline no longer skips the gate — it fails it.
func checkFloor(name, unit string, got, base, scale, tol float64) error {
	if err := finitePositive(name+" baseline", base); err != nil {
		return err
	}
	if err := finitePositive(name+" measured", got); err != nil {
		return err
	}
	floor := base / (scale * (1 + tol))
	if got < floor {
		return fmt.Errorf("%s regressed: %.2f %s < %.2f %s floor (baseline %.2f / calibration %.2f / %.2f)",
			name, got, unit, floor, unit, base, scale, 1+tol)
	}
	fmt.Printf("benchsmoke: %s ok: %.2f %s >= %.2f %s\n", name, got, unit, floor, unit)
	return nil
}

// checkAbsoluteFloor gates a machine-independent quality metric (e.g. the
// deterministic prefilter agreement fraction): measured must not drop
// below the recorded baseline at all. Both sides must be finite and
// positive — an absent agreement field fails rather than passes.
func checkAbsoluteFloor(name string, got, base float64) error {
	if err := finitePositive(name+" baseline", base); err != nil {
		return err
	}
	if err := finitePositive(name+" measured", got); err != nil {
		return err
	}
	if got < base {
		return fmt.Errorf("%s regressed: %.3f < baseline %.3f (deterministic metric, no tolerance)", name, got, base)
	}
	fmt.Printf("benchsmoke: %s ok: %.3f >= %.3f\n", name, got, base)
	return nil
}
