// Command benchsmoke is the benchstat-style perf gate of CI: it re-runs
// the training hot-path benchmarks (internal/benchkit) and fails if they
// regress more than the tolerance against the checked-in baseline
// (BENCH_baseline.json), or if the steady-state epoch allocates at all.
//
// Raw ns/op is machine-dependent, so the gate first scales the baseline
// by a calibration ratio: a fixed serial-dot-product kernel measured both
// at baseline time and now. A slower CI machine raises the thresholds
// proportionally instead of failing spuriously.
//
// Usage:
//
//	benchsmoke -baseline BENCH_baseline.json          # gate (CI)
//	benchsmoke -baseline BENCH_baseline.json -write   # record a new baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"twophase/internal/benchkit"
)

type baseline struct {
	GoVersion   string               `json:"go_version"`
	CPU         string               `json:"cpu"`
	Tolerance   float64              `json:"tolerance"`
	Calibration benchkit.Measurement `json:"calibration"`
	TrainEpoch  benchkit.Measurement `json:"train_epoch"`
	Candidate   benchkit.Measurement `json:"candidate_epoch"`
}

func main() {
	var (
		path  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		write = flag.Bool("write", false, "record the current measurements as the new baseline")
	)
	flag.Parse()
	if err := run(*path, *write); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}

func run(path string, write bool) error {
	calib := benchkit.Calibration()
	epoch, err := benchkit.TrainEpoch()
	if err != nil {
		return err
	}
	cand, err := benchkit.CandidateRun()
	if err != nil {
		return err
	}
	fmt.Printf("benchsmoke: calibration %.0fns, train epoch %.0fns/op (%d allocs), candidate epoch %.0fns/op\n",
		calib.NsPerOp, epoch.NsPerOp, epoch.AllocsPerOp, cand.NsPerOp)

	if write {
		b := baseline{
			GoVersion:   runtime.Version(),
			CPU:         runtime.GOARCH,
			Tolerance:   0.20,
			Calibration: calib,
			TrainEpoch:  epoch,
			Candidate:   cand,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Println("benchsmoke: baseline written to", path)
		return nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline (record one with -write): %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.20
	}
	scale := 1.0
	if base.Calibration.NsPerOp > 0 && calib.NsPerOp > 0 {
		scale = calib.NsPerOp / base.Calibration.NsPerOp
	}

	// The -benchmem assertion: steady-state epochs must stay allocation-
	// free; allocation regressions are machine-independent and get no
	// tolerance.
	if epoch.AllocsPerOp > base.TrainEpoch.AllocsPerOp {
		return fmt.Errorf("TrainEpoch allocates %d/op, baseline %d/op", epoch.AllocsPerOp, base.TrainEpoch.AllocsPerOp)
	}

	check := func(name string, got, want float64) error {
		max := want * scale * (1 + base.Tolerance)
		if got > max {
			return fmt.Errorf("%s regressed: %.0fns/op > %.0fns/op (baseline %.0f x calibration %.2f x %.2f)",
				name, got, max, want, scale, 1+base.Tolerance)
		}
		fmt.Printf("benchsmoke: %s ok: %.0fns/op <= %.0fns/op\n", name, got, max)
		return nil
	}
	if err := check("BenchmarkTrainEpoch", epoch.NsPerOp, base.TrainEpoch.NsPerOp); err != nil {
		return err
	}
	return check("BenchmarkCandidateRun(per epoch)", cand.NsPerOp, base.Candidate.NsPerOp)
}
