// Command benchsmoke is the benchstat-style perf gate of CI: it re-runs
// the training hot-path benchmarks (internal/benchkit) and fails if they
// regress more than the tolerance against the checked-in baseline
// (BENCH_baseline.json), or if the steady-state epoch allocates at all.
//
// Raw ns/op is machine-dependent, so the gate first scales the baseline
// by a calibration ratio: a fixed serial-dot-product kernel measured both
// at baseline time and now. A slower CI machine raises the thresholds
// proportionally instead of failing spuriously.
//
// Usage:
//
//	benchsmoke -baseline BENCH_baseline.json          # gate (CI)
//	benchsmoke -baseline BENCH_baseline.json -write   # record a new baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"twophase/internal/benchkit"
)

type baseline struct {
	GoVersion   string               `json:"go_version"`
	CPU         string               `json:"cpu"`
	Tolerance   float64              `json:"tolerance"`
	Calibration benchkit.Measurement `json:"calibration"`
	TrainEpoch  benchkit.Measurement `json:"train_epoch"`
	Candidate   benchkit.Measurement `json:"candidate_epoch"`
	// MulFrameGFLOPS gates kernel throughput (higher is better); the
	// embedded build fields (build_ms_serial / build_ms_parallel /
	// build_speedup) gate the offline pipeline on both axes: parallel
	// wall clock must not regress, and on a multi-core box the parallel
	// build must actually beat the serial one.
	MulFrameGFLOPS            float64 `json:"mulframe_gflops"`
	benchkit.BuildMeasurement         // flattens to build_ms_* / build_speedup
	// LSQSelectMicros gates the zero-epoch lsq selection's end-to-end
	// latency (calibration-scaled ceiling); PrefilterAgreement gates the
	// fraction of smoke targets whose prefiltered two-phase winner matches
	// the unfiltered one — deterministic, so it is an absolute floor.
	LSQSelectMicros    float64 `json:"lsq_select_us"`
	PrefilterAgreement float64 `json:"prefilter_agreement"`
}

func main() {
	var (
		path  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		write = flag.Bool("write", false, "record the current measurements as the new baseline")
	)
	flag.Parse()
	if err := run(*path, *write); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}

func run(path string, write bool) error {
	calib := benchkit.Calibration()
	epoch, err := benchkit.TrainEpoch()
	if err != nil {
		return err
	}
	cand, err := benchkit.CandidateRun()
	if err != nil {
		return err
	}
	gflops := benchkit.MulFrameGFLOPS()
	build, err := benchkit.BuildPair()
	if err != nil {
		return err
	}
	lsqSel, err := benchkit.LSQSelect()
	if err != nil {
		return err
	}
	lsqMicros := lsqSel.NsPerOp / 1e3
	agreement, err := benchkit.PrefilterAgreement()
	if err != nil {
		return err
	}
	fmt.Printf("benchsmoke: calibration %.0fns, train epoch %.0fns/op (%d allocs), candidate epoch %.0fns/op (%d allocs)\n",
		calib.NsPerOp, epoch.NsPerOp, epoch.AllocsPerOp, cand.NsPerOp, cand.AllocsPerOp)
	fmt.Printf("benchsmoke: mulframe %.2f GFLOP/s, build serial %.0fms / parallel %.0fms (speedup %.2fx, GOMAXPROCS=%d)\n",
		gflops, build.SerialMillis, build.ParallelMillis, build.Speedup, runtime.GOMAXPROCS(0))
	fmt.Printf("benchsmoke: lsq select %.0fus/op, prefilter agreement %.3f (top-%d)\n",
		lsqMicros, agreement, benchkit.DefaultPrefilterK)

	if write {
		b := baseline{
			GoVersion:          runtime.Version(),
			CPU:                runtime.GOARCH,
			Tolerance:          0.20,
			Calibration:        calib,
			TrainEpoch:         epoch,
			Candidate:          cand,
			MulFrameGFLOPS:     gflops,
			BuildMeasurement:   build,
			LSQSelectMicros:    lsqMicros,
			PrefilterAgreement: agreement,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Println("benchsmoke: baseline written to", path)
		return nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline (record one with -write): %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.20
	}
	// A degenerate calibration on either side fails the smoke instead of
	// silently gating at scale 1.0 (see gates.go).
	scale, err := calibrationScale(base.Calibration.NsPerOp, calib.NsPerOp)
	if err != nil {
		return err
	}

	// The -benchmem assertions: steady-state epochs must stay allocation-
	// free and a candidate run must stay at its slab-allocated floor;
	// allocation regressions are machine-independent and get no tolerance.
	if epoch.AllocsPerOp > base.TrainEpoch.AllocsPerOp {
		return fmt.Errorf("TrainEpoch allocates %d/op, baseline %d/op", epoch.AllocsPerOp, base.TrainEpoch.AllocsPerOp)
	}
	if cand.AllocsPerOp > base.Candidate.AllocsPerOp {
		return fmt.Errorf("CandidateRun allocates %d/op, baseline %d/op", cand.AllocsPerOp, base.Candidate.AllocsPerOp)
	}

	if err := checkCeiling("BenchmarkTrainEpoch", "ns/op", epoch.NsPerOp, base.TrainEpoch.NsPerOp, scale, base.Tolerance); err != nil {
		return err
	}
	if err := checkCeiling("BenchmarkCandidateRun(per epoch)", "ns/op", cand.NsPerOp, base.Candidate.NsPerOp, scale, base.Tolerance); err != nil {
		return err
	}
	if err := checkCeiling("BuildParallel", "ms", build.ParallelMillis, base.ParallelMillis, scale, base.Tolerance); err != nil {
		return err
	}
	if err := checkCeiling("LSQSelect", "us/op", lsqMicros, base.LSQSelectMicros, scale, base.Tolerance); err != nil {
		return err
	}
	// GFLOP/s is higher-is-better, so the calibration ratio divides: a
	// slower machine lowers the floor instead of raising a ceiling. A
	// missing baseline fails rather than skips the gate.
	if err := checkFloor("MulFrame", "GFLOP/s", gflops, base.MulFrameGFLOPS, scale, base.Tolerance); err != nil {
		return err
	}
	// Prefilter agreement is deterministic at the smoke world, so the
	// recorded baseline is an exact floor: any drop means the pre-filter
	// started discarding the eventual winner.
	if err := checkAbsoluteFloor("PrefilterAgreement", agreement, base.PrefilterAgreement); err != nil {
		return err
	}
	// The multi-core dividend: with >1 CPU the parallel build must beat
	// the serial one outright. Absolute, not baseline-relative — a 1-CPU
	// baseline records ~1.0 and that must not excuse a regression in CI.
	if runtime.GOMAXPROCS(0) > 1 {
		if build.Speedup <= 1.0 {
			return fmt.Errorf("build speedup %.2fx <= 1.0x with GOMAXPROCS=%d: parallel offline build lost its multi-core win",
				build.Speedup, runtime.GOMAXPROCS(0))
		}
		fmt.Printf("benchsmoke: build speedup ok: %.2fx > 1.0x\n", build.Speedup)
	}
	return nil
}
