package main

import (
	"math"
	"strings"
	"testing"
)

// The regression these tests pin: gates must fail LOUDLY on zero, NaN or
// missing inputs instead of silently passing (a zero baseline made any
// regression look fine; a NaN measurement compared false on every side).

func TestFinitePositiveRejectsDegenerateInputs(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := finitePositive("field", v); err == nil {
			t.Errorf("finitePositive(%v) passed, want error", v)
		}
	}
	if err := finitePositive("field", 123.4); err != nil {
		t.Fatalf("finitePositive(123.4): %v", err)
	}
}

func TestCalibrationScaleRefusesSilentFallback(t *testing.T) {
	if _, err := calibrationScale(0, 100); err == nil {
		t.Error("zero baseline calibration passed, want error (old code silently used scale=1)")
	}
	if _, err := calibrationScale(100, math.NaN()); err == nil {
		t.Error("NaN measured calibration passed, want error")
	}
	s, err := calibrationScale(100, 150)
	if err != nil || s != 1.5 {
		t.Fatalf("calibrationScale(100, 150) = %v, %v; want 1.5", s, err)
	}
}

func TestCheckCeiling(t *testing.T) {
	// In-tolerance measurement passes.
	if err := checkCeiling("m", "ns", 110, 100, 1.0, 0.20); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	// Regression fails.
	if err := checkCeiling("m", "ns", 130, 100, 1.0, 0.20); err == nil {
		t.Error("30%% regression passed a 20%% gate")
	}
	// The silent-pass bug: zero or NaN on either side must now error.
	if err := checkCeiling("m", "ns", 130, 0, 1.0, 0.20); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("zero baseline: got %v, want baseline validation error", err)
	}
	if err := checkCeiling("m", "ns", 0, 100, 1.0, 0.20); err == nil || !strings.Contains(err.Error(), "measured") {
		t.Errorf("zero measurement: got %v, want measured validation error", err)
	}
	if err := checkCeiling("m", "ns", math.NaN(), 100, 1.0, 0.20); err == nil {
		t.Error("NaN measurement passed the ceiling gate")
	}
}

func TestCheckFloor(t *testing.T) {
	// Throughput holding the floor passes; dropping below fails.
	if err := checkFloor("gflops", "GFLOP/s", 10, 10, 1.0, 0.20); err != nil {
		t.Fatalf("at baseline: %v", err)
	}
	if err := checkFloor("gflops", "GFLOP/s", 5, 10, 1.0, 0.20); err == nil {
		t.Error("halved throughput passed the floor gate")
	}
	// The skipped-gate bug: base <= 0 used to bypass the gate entirely.
	if err := checkFloor("gflops", "GFLOP/s", 5, 0, 1.0, 0.20); err == nil {
		t.Error("zero baseline skipped the floor gate, want error")
	}
	// A slower machine (scale > 1) lowers the floor.
	if err := checkFloor("gflops", "GFLOP/s", 5, 10, 2.0, 0.20); err != nil {
		t.Fatalf("calibration-lowered floor: %v", err)
	}
}

func TestCheckAbsoluteFloor(t *testing.T) {
	if err := checkAbsoluteFloor("agreement", 0.75, 0.75); err != nil {
		t.Fatalf("equal to baseline: %v", err)
	}
	if err := checkAbsoluteFloor("agreement", 0.5, 0.75); err == nil {
		t.Error("dropped agreement passed the absolute floor")
	}
	if err := checkAbsoluteFloor("agreement", 0.75, 0); err == nil {
		t.Error("missing baseline agreement passed, want error")
	}
	if err := checkAbsoluteFloor("agreement", math.NaN(), 0.75); err == nil {
		t.Error("NaN agreement passed, want error")
	}
}
