// Command gateway fronts a fleet of apiserver backends with consistent-
// hash routing: every (task, seed) world hashes to a stable replica owner
// set, batch selections scatter across the world's live owners and gather
// back in request order, and a sub-request hitting a dead backend fails
// over to the next replica — selections are deterministic in the world,
// so failover is invisible to clients. Backends are health-probed; a
// backend is marked down after consecutive probe failures and re-admitted
// on recovery, reclaiming its exact key range (cache affinity survives a
// bounce).
//
// The gateway serves the same v1 contract as a single backend:
//
//	POST /v1/select                  scatter-gathered selection
//	GET  /v1/tasks/{task}/targets    proxied target catalog
//	GET  /v1/healthz                 ok while ≥1 backend is alive
//	GET  /v1/stats                   fleet sums + ring/routing counters
//
// Usage:
//
//	gateway -backends http://h1:8080,http://h2:8080 [flags]
//
// Flags:
//
//	-addr HOST:PORT      listen address (default :8090)
//	-backends URLS       comma-separated backend base URLs (required)
//	-replicas N          owner replicas per (task, seed) key (default 2)
//	-vnodes N            virtual nodes per backend on the ring (default 64)
//	-seed N              routing seed for requests without one; must match
//	                     the backends' -seed (default 42)
//	-probe-interval D    health-check period (default 1s)
//	-probe-failures K    consecutive failures that mark a backend down
//	                     (default 2)
//	-instance ID         this gateway's X-Instance-Id (default "gateway")
//	-pprof-addr ADDR     serve net/http/pprof on a dedicated listener
//	                     (e.g. 127.0.0.1:6061; empty = disabled)
//	-shutdown-grace D    drain window after SIGTERM/SIGINT (default 15s)
//	-attempt-timeout D   per-attempt timeout on each forwarded backend
//	                     request, distinct from the request's deadline_ms:
//	                     a hung backend costs one attempt and a failover,
//	                     not the whole deadline (0 = disabled)
//	-fault-schedule S    deterministic fault-injection schedule applied to
//	                     the gateway→backend transport, e.g.
//	                     "seed=7;transport:reset@0.2#5" (empty =
//	                     TWOPHASE_FAULT_SCHEDULE env, empty = off)
//
// Admission control (all off by default; see internal/admission):
//
//	-rate R              per-client token refill, requests/second
//	                     (0 = no rate limiting); refusals are 429
//	                     rate_limited with Retry-After
//	-burst N             per-client bucket capacity (0 = max(rate, 1))
//	-inflight N          max concurrently admitted selections
//	                     (0 = unlimited); excess requests queue
//	-queue N             max queued requests past the inflight bound;
//	                     beyond it the lowest-priority waiter is shed as
//	                     503 overloaded with Retry-After
//	-hedge-pct P         hedge a select sub-request still in flight past
//	                     the fleet's recent P-th latency percentile by
//	                     racing the next replica (0 = disabled)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"twophase/internal/admission"
	"twophase/internal/api"
	"twophase/internal/breaker"
	"twophase/internal/faultinject"
	"twophase/internal/shard"
)

type config struct {
	addr           string
	backends       string
	replicas       int
	vnodes         int
	seed           uint64
	probeInterval  time.Duration
	probeFailures  int
	instance       string
	pprofAddr      string
	shutdownGrace  time.Duration
	rate           float64
	burst          float64
	inflight       int
	queue          int
	hedgePct       float64
	attemptTimeout time.Duration
	faultSchedule  string
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", ":8090", "listen address")
	flag.StringVar(&cfg.backends, "backends", "", "comma-separated backend base URLs (required)")
	flag.IntVar(&cfg.replicas, "replicas", shard.DefaultReplicas, "owner replicas per (task, seed) key")
	flag.IntVar(&cfg.vnodes, "vnodes", shard.DefaultVNodes, "virtual nodes per backend on the ring")
	flag.Uint64Var(&cfg.seed, "seed", 42, "routing seed for requests without one (must match the backends')")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", shard.DefaultProbeInterval, "health-check period")
	flag.IntVar(&cfg.probeFailures, "probe-failures", shard.DefaultProbeThreshold, "consecutive probe failures that mark a backend down")
	flag.StringVar(&cfg.instance, "instance", "gateway", "this gateway's X-Instance-Id")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 15*time.Second, "drain window on SIGTERM/SIGINT")
	flag.Float64Var(&cfg.rate, "rate", 0, "per-client token refill rate, req/s (0 = no rate limiting)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-client bucket capacity (0 = max(rate, 1))")
	flag.IntVar(&cfg.inflight, "inflight", 0, "max concurrently admitted selections (0 = unlimited)")
	flag.IntVar(&cfg.queue, "queue", 0, "max queued requests past the inflight bound")
	flag.Float64Var(&cfg.hedgePct, "hedge-pct", 0, "hedge select sub-requests past this latency percentile (0 = disabled)")
	flag.DurationVar(&cfg.attemptTimeout, "attempt-timeout", 0, "per-attempt timeout on forwarded backend requests (0 = disabled)")
	flag.StringVar(&cfg.faultSchedule, "fault-schedule", "", "deterministic fault-injection schedule (empty = TWOPHASE_FAULT_SCHEDULE env, empty = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

// parseBackends splits and sanity-checks the -backends flag.
func parseBackends(spec string) ([]string, error) {
	var out []string
	for _, b := range strings.Split(spec, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return nil, fmt.Errorf("backend %q is not an http(s) URL", b)
		}
		out = append(out, strings.TrimRight(b, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-backends is required (comma-separated base URLs)")
	}
	return out, nil
}

// run starts the gateway and blocks until ctx is canceled (then drains
// for the grace window) or the listener fails. If ready is non-nil the
// bound address is sent once the listener is up, so tests can bind
// 127.0.0.1:0.
func run(ctx context.Context, cfg config, ready chan<- string) error {
	backends, err := parseBackends(cfg.backends)
	if err != nil {
		return err
	}
	if pprofAddr, err := api.StartPprof(cfg.pprofAddr); err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	} else if pprofAddr != "" {
		log.Printf("gateway: pprof on http://%s/debug/pprof/", pprofAddr)
	}
	if cfg.replicas <= 0 || cfg.vnodes <= 0 || cfg.probeFailures <= 0 || cfg.probeInterval <= 0 {
		return fmt.Errorf("-replicas, -vnodes, -probe-interval and -probe-failures must be positive")
	}
	if cfg.rate < 0 || cfg.burst < 0 || cfg.inflight < 0 || cfg.queue < 0 || cfg.hedgePct < 0 || cfg.hedgePct > 100 {
		return fmt.Errorf("-rate, -burst, -inflight and -queue must be non-negative; -hedge-pct must be in [0, 100]")
	}
	if cfg.attemptTimeout < 0 {
		return fmt.Errorf("-attempt-timeout must be non-negative")
	}
	// A malformed schedule is a configuration error and must fail startup
	// loudly — a chaos run whose faults silently never fire would "prove"
	// invariants it did not test.
	if err := faultinject.Enable(cfg.faultSchedule); err != nil {
		return err
	}
	router, err := shard.NewRouter(shard.RouterOptions{
		Backends:       backends,
		Replicas:       cfg.replicas,
		VNodes:         cfg.vnodes,
		Seed:           cfg.seed,
		ProbeInterval:  cfg.probeInterval,
		ProbeThreshold: cfg.probeFailures,
		// The transport wrapper is where the "transport" fault site lives
		// (latency spikes, resets, raw 5xx bursts); with no schedule armed
		// it is a single atomic load per round trip.
		HTTPClient:      &http.Client{Transport: faultinject.Transport(nil)},
		HedgePercentile: cfg.hedgePct,
		AttemptTimeout:  cfg.attemptTimeout,
		// Seed the half-open admission coin with the routing seed, so a
		// seeded chaos run re-admits probes in the same order every time.
		Breaker: breaker.Options{Seed: cfg.seed},
	})
	if err != nil {
		return err
	}
	// The probe loop outlives the signal context on purpose: after
	// SIGTERM the server keeps draining in-flight requests for the grace
	// window, and failover during that drain still needs a live health
	// view. The deferred Close cancels the loop and *waits* for it once
	// ServeUntilShutdown returns, so shutdown leaks no probe goroutine.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	router.Start(probeCtx)
	defer router.Close()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The gateway is ready when at least one backend has been probed
	// alive: healthz answers 503 while the whole fleet is down or still
	// warming, so a load balancer in front of multiple gateways holds
	// traffic exactly like one in front of a warming single node. Until
	// the first probe round lands, membership's optimistic defaults
	// must not leak out as readiness.
	members := router.Membership()
	// Admission guards the gateway's own front door: requests refused here
	// never reach a backend, so an overload sheds with a typed 429/503
	// instead of queueing up against the fleet.
	var ctrl *admission.Controller
	if cfg.rate > 0 || cfg.inflight > 0 {
		ctrl = admission.NewController(admission.Options{
			Rate:        cfg.rate,
			Burst:       cfg.burst,
			MaxInflight: cfg.inflight,
			MaxQueue:    cfg.queue,
		})
	}
	handler := api.NewHandlerWith(router, api.HandlerOptions{
		Ready:     func() bool { return members.Probed() && members.AliveCount() > 0 },
		Instance:  cfg.instance,
		Admission: ctrl,
	})
	log.Printf("gateway: routing v1 selection API on %s across %d backends (replicas %d, vnodes %d, seed %d)",
		ln.Addr(), len(backends), cfg.replicas, cfg.vnodes, cfg.seed)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return api.ServeUntilShutdown(ctx, ln, handler, cfg.shutdownGrace)
}
