package main

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"twophase/internal/api"
)

// echoAPI is a minimal backend for gateway lifecycle tests.
type echoAPI struct{ instance string }

func (e *echoAPI) Select(_ context.Context, req *api.SelectRequest) (*api.SelectResponse, error) {
	resp := &api.SelectResponse{APIVersion: api.Version, Task: req.Task, Strategy: "two-phase",
		Results: make([]api.TargetResult, len(req.Targets))}
	for i, t := range req.Targets {
		resp.Results[i] = api.TargetResult{Target: t, Winner: "w"}
	}
	return resp, nil
}

func (e *echoAPI) Targets(_ context.Context, task string) (*api.TargetsResponse, error) {
	return &api.TargetsResponse{APIVersion: api.Version, Task: task, Targets: []string{"t0"}}, nil
}

func (e *echoAPI) Stats(context.Context) (*api.Stats, error) {
	return &api.Stats{APIVersion: api.Version}, nil
}

func TestParseBackends(t *testing.T) {
	got, err := parseBackends(" http://a:1/, http://b:2 ,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"http://a:1", "http://b:2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBackends = %v", got)
	}
	for _, bad := range []string{"", "   ,", "a:1", "ftp://x"} {
		if _, err := parseBackends(bad); err == nil {
			t.Fatalf("parseBackends(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	base := config{addr: "127.0.0.1:0", backends: "http://127.0.0.1:1",
		replicas: 1, vnodes: 8, probeInterval: time.Second, probeFailures: 1}
	for _, mutate := range []func(*config){
		func(c *config) { c.backends = "" },
		func(c *config) { c.replicas = 0 },
		func(c *config) { c.vnodes = -1 },
		func(c *config) { c.probeInterval = 0 },
		func(c *config) { c.probeFailures = 0 },
	} {
		cfg := base
		mutate(&cfg)
		if err := run(context.Background(), cfg, nil); err == nil {
			t.Fatalf("bad config accepted: %+v", cfg)
		}
	}
}

// TestGatewayLifecycle boots a real gateway over two live backends on an
// ephemeral port, serves a selection through it, and shuts down cleanly.
func TestGatewayLifecycle(t *testing.T) {
	b1 := httptest.NewServer(api.NewHandlerWith(&echoAPI{}, api.HandlerOptions{Instance: "b1"}))
	defer b1.Close()
	b2 := httptest.NewServer(api.NewHandlerWith(&echoAPI{}, api.HandlerOptions{Instance: "b2"}))
	defer b2.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{
		addr:          "127.0.0.1:0",
		backends:      b1.URL + "," + b2.URL,
		replicas:      2,
		vnodes:        16,
		seed:          42,
		probeInterval: 20 * time.Millisecond,
		probeFailures: 2,
		instance:      "gw",
		shutdownGrace: 5 * time.Second,
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("gateway exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never became ready")
	}
	c := api.NewClient("http://"+addr, nil)

	// Healthz flips ok once a probe round has seen a live backend.
	deadline := time.After(5 * time.Second)
	for {
		if h, err := c.Healthz(context.Background()); err == nil {
			if h.Instance != "gw" {
				t.Fatalf("gateway health instance = %q", h.Instance)
			}
			break
		}
		select {
		case err := <-done:
			t.Fatalf("gateway died: %v", err)
		case <-deadline:
			t.Fatal("gateway never reported ready")
		case <-time.After(10 * time.Millisecond):
		}
	}

	resp, err := c.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0", "t1", "t2"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 || len(resp.Results) != 3 {
		t.Fatalf("select through gateway: %+v", resp)
	}
	for _, tr := range resp.Results {
		if tr.Backend != "b1" && tr.Backend != "b2" {
			t.Fatalf("target %s served by unknown backend %q", tr.Target, tr.Backend)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway == nil || st.Gateway.Backends != 2 {
		t.Fatalf("gateway stats over HTTP: %+v", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down within the grace window")
	}
}
