// Command experiments regenerates the paper's tables and figures on the
// synthetic substrate.
//
// Usage:
//
//	experiments [-seed N] [-only id1,id2,...] [-list] [-csv DIR]
//
// Without -only it runs every experiment in paper order. Experiment ids
// match DESIGN.md's index (fig1, tab1, ..., extRobust). With -csv, each
// table is additionally written as DIR/<id>.csv for plotting.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"twophase/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "world seed")
	only := flag.String("only", "", "comma-separated experiment ids to run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files to")
	flag.Parse()

	if err := run(os.Stdout, *seed, *only, *list, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed uint64, only string, list bool, csvDir string) error {
	if list {
		for _, ex := range experiments.All() {
			fmt.Fprintf(w, "%-12s %s\n", ex.ID, ex.Paper)
		}
		return nil
	}

	var selected []experiments.Experiment
	if only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(only, ",") {
			ex, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, ex)
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	env := experiments.NewEnv(seed)
	for _, ex := range selected {
		table, err := ex.Run(env)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", ex.ID, err)
		}
		if err := table.Render(w); err != nil {
			return err
		}
		if csvDir != "" {
			if err := writeCSV(filepath.Join(csvDir, ex.ID+".csv"), table); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(path string, table *experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(table.Header); err != nil {
		return err
	}
	for _, row := range table.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
