package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 42, "", true, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"fig1", "tab6", "extEnsemble"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 42, "nope", false, ""); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full framework; skipped in -short")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, 42, "tabX", false, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table X") {
		t.Fatalf("output missing table:\n%s", b.String())
	}
	f, err := os.Open(filepath.Join(dir, "tabX.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 6 rows
	if len(records) != 7 {
		t.Fatalf("csv has %d records", len(records))
	}
	if records[0][0] != "task" {
		t.Fatalf("csv header %v", records[0])
	}
}
