// Command benchservice measures the serving layer's performance envelope
// and writes one JSON document so CI can accumulate a perf trajectory
// across commits:
//
//   - cold_build_ms: the full offline pipeline (world synthesis,
//     performance matrix, clustering) with an empty artifact store
//   - warm_start_ms: a second process assembling from the persisted stage
//     artifacts — the number the staged pipeline exists to shrink
//   - artifact_load_ms / json_load_ms: decoding the world's stage
//     documents from the binary artifact codec vs JSON (build_ms is the
//     build-from-scratch baseline in the same units)
//   - select_ms_avg/p50/max: online two-phase selection latency on a warm
//     framework
//   - cache hit/miss/eviction counts and the hit rate over the run
//
// Usage:
//
//	benchservice -out BENCH_service.json [-task nlp] [-seed 42]
//	             [-selects 8] [-train 60 -val 40 -test 48]
//
// The split sizes default to the test suite's tiny world so a CI run
// finishes in seconds; absolute numbers are only comparable at equal
// sizes, which the document records.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"twophase/internal/artifact"
	"twophase/internal/benchkit"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/service"
	"twophase/internal/trainer"
)

type document struct {
	Task      string        `json:"task"`
	Seed      uint64        `json:"seed"`
	Sizes     datahub.Sizes `json:"sizes"`
	Targets   int           `json:"targets"`
	Selects   int           `json:"selects"`
	GoVersion string        `json:"go_version"`

	ColdBuildMillis float64 `json:"cold_build_ms"`
	WarmStartMillis float64 `json:"warm_start_ms"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	WarmBuilds      int     `json:"warm_builds"` // must be 0

	// Artifact codec trajectory: decoding the world's persisted stage
	// documents (performance matrix + recall) from the binary codec vs
	// the JSON they used to be stored as, and vs building them from
	// scratch (build_ms echoes cold_build_ms in comparable units). Both
	// loads are min-of-N in-memory decodes, so the ratio isolates codec
	// cost from disk cache noise.
	ArtifactLoadMillis float64 `json:"artifact_load_ms"`
	JSONLoadMillis     float64 `json:"json_load_ms"`
	ArtifactSpeedup    float64 `json:"artifact_speedup"` // json_load / artifact_load
	BuildMillis        float64 `json:"build_ms"`

	SelectMillisAvg float64 `json:"select_ms_avg"`
	SelectMillisP50 float64 `json:"select_ms_p50"`
	SelectMillisMax float64 `json:"select_ms_max"`
	SelectEpochs    float64 `json:"select_epochs_avg"`

	// Zero-epoch serving path: one warm lsq selection end to end (closed
	// -form ridge heads over the whole repository), and the fraction of
	// this world's targets whose prefiltered two-phase winner matches the
	// unfiltered one (deterministic at fixed seed/sizes).
	LSQSelectMicros    float64 `json:"lsq_select_us"`
	PrefilterAgreement float64 `json:"prefilter_agreement"`
	PrefilterTopK      int     `json:"prefilter_top_k"`

	// Offline-build and epoch-throughput trajectory of the flat-buffer
	// numeric core. CandidateRunMicros is one full fine-tuning run
	// (NewRun against the warm feature cache + the full epoch budget) of
	// one (model, target) pair at the document's split sizes;
	// EpochsPerSec is its per-epoch throughput. Note this is the
	// *amortized candidate* epoch — the steady-state kernel epoch is
	// benchsmoke's train_epoch metric, measured without run setup.
	CandidateRunMicros float64 `json:"candidate_run_us"`
	EpochsPerSec       float64 `json:"epochs_per_sec"`
	FeatureExtractions int64   `json:"feature_extractions"`

	// Parallel offline-build trajectory at the document's task/seed/
	// sizes: the same pipeline with BuildWorkers=1 vs the full CPU
	// budget (bit-identity of the two matrices is verified, not
	// assumed), plus sustained batched-GEMM throughput. GOMAXPROCS
	// records how many CPUs the speedup had to work with.
	BuildSerialMillis   float64 `json:"build_ms_serial"`
	BuildParallelMillis float64 `json:"build_ms_parallel"`
	BuildSpeedup        float64 `json:"build_speedup"`
	MulFrameGFLOPS      float64 `json:"mulframe_gflops"`
	GoMaxProcs          int     `json:"gomaxprocs"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_service.json", "output JSON path")
		task    = flag.String("task", datahub.TaskNLP, `task family: "nlp" or "cv"`)
		seed    = flag.Uint64("seed", 42, "world seed")
		selects = flag.Int("selects", 8, "warm selections to time")
		sizes   datahub.Sizes
	)
	flag.IntVar(&sizes.Train, "train", 60, "train split size")
	flag.IntVar(&sizes.Val, "val", 40, "val split size")
	flag.IntVar(&sizes.Test, "test", 48, "test split size")
	flag.Parse()

	if err := run(*out, *task, *seed, *selects, sizes); err != nil {
		fmt.Fprintln(os.Stderr, "benchservice:", err)
		os.Exit(1)
	}
}

func run(out, task string, seed uint64, selects int, sizes datahub.Sizes) error {
	ctx := context.Background()
	storeDir, err := os.MkdirTemp("", "benchservice-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	opts := service.Options{
		Base:     core.Options{Seed: seed, Sizes: sizes},
		StoreDir: storeDir,
	}

	// Cold: empty store, full offline pipeline.
	cold, err := service.New(opts)
	if err != nil {
		return err
	}
	coldStart := time.Now()
	fw, err := cold.Framework(ctx, task)
	if err != nil {
		return err
	}
	coldMillis := millisSince(coldStart)
	if cold.Builds() != 1 {
		return fmt.Errorf("cold service ran %d builds, want 1", cold.Builds())
	}

	// Warm: a second process over the persisted stage artifacts.
	warm, err := service.New(opts)
	if err != nil {
		return err
	}
	warmStart := time.Now()
	if _, err := warm.Framework(ctx, task); err != nil {
		return err
	}
	warmMillis := millisSince(warmStart)

	// Online selection latency over the warm service, cycling the catalog.
	targets := fw.Catalog.Targets()
	if len(targets) == 0 {
		return fmt.Errorf("task %s has no targets", task)
	}
	if selects < 1 {
		selects = 1
	}
	latencies := make([]float64, 0, selects)
	var epochs float64
	for i := 0; i < selects; i++ {
		name := targets[i%len(targets)].Name
		start := time.Now()
		report, err := warm.Select(ctx, task, name)
		if err != nil {
			return fmt.Errorf("select %s: %w", name, err)
		}
		latencies = append(latencies, millisSince(start))
		epochs += report.TotalEpochs()
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	cache := warm.CacheStats()

	// Codec comparison on the world this run just persisted: the same
	// matrix + recall documents decoded from the binary artifact codec
	// and from JSON. min-of-N so a GC pause or scheduler hiccup cannot
	// fake a regression either way.
	artifactMillis, jsonMillis, err := benchCodec(warm, task, seed)
	if err != nil {
		return err
	}

	// Epoch throughput: one candidate fine-tuning run (head init +
	// cached feature lookup + full epoch budget) on the first repository
	// model and target, after a warmup run primes the shared feature
	// cache the way any earlier proxy score or strategy round would.
	model := fw.Repo.Models()[0]
	targetDS := targets[0]
	if _, err := trainer.FineTune(model, targetDS, fw.HP, fw.Seed, "benchservice"); err != nil {
		return err
	}
	const epochRuns = 8
	epochStart := time.Now()
	for i := 0; i < epochRuns; i++ {
		if _, err := trainer.FineTune(model, targetDS, fw.HP, fw.Seed, "benchservice"); err != nil {
			return err
		}
	}
	candidateMicros := float64(time.Since(epochStart).Microseconds()) / epochRuns

	// Zero-epoch path on the same warm framework: lsq selection latency
	// and the prefilter's winner-agreement over this world's targets.
	lsqSel, err := benchkit.LSQSelectFW(fw)
	if err != nil {
		return err
	}
	agreement, err := benchkit.PrefilterAgreementFW(fw, benchkit.DefaultPrefilterK)
	if err != nil {
		return err
	}

	// Serial-vs-parallel offline build at this document's own world, and
	// kernel throughput. BuildPairAt also verifies the two matrices are
	// bit-identical, so a determinism break fails the run outright.
	buildPair, err := benchkit.BuildPairAt(core.Options{Task: task, Seed: seed, Sizes: sizes})
	if err != nil {
		return err
	}
	gflops := benchkit.MulFrameGFLOPS()

	doc := document{
		Task:            task,
		Seed:            seed,
		Sizes:           sizes,
		Targets:         len(targets),
		Selects:         selects,
		GoVersion:       runtime.Version(),
		ColdBuildMillis: coldMillis,
		WarmStartMillis: warmMillis,
		WarmBuilds:      warm.Builds(),

		ArtifactLoadMillis: artifactMillis,
		JSONLoadMillis:     jsonMillis,
		BuildMillis:        coldMillis,
		SelectMillisAvg:    sum / float64(len(latencies)),
		SelectMillisP50:    latencies[len(latencies)/2],
		SelectMillisMax:    latencies[len(latencies)-1],
		SelectEpochs:       epochs / float64(selects),

		LSQSelectMicros:    lsqSel.NsPerOp / 1e3,
		PrefilterAgreement: agreement,
		PrefilterTopK:      benchkit.DefaultPrefilterK,

		CandidateRunMicros: candidateMicros,
		FeatureExtractions: modelhub.Extractions(),

		BuildSerialMillis:   buildPair.SerialMillis,
		BuildParallelMillis: buildPair.ParallelMillis,
		BuildSpeedup:        buildPair.Speedup,
		MulFrameGFLOPS:      gflops,
		GoMaxProcs:          runtime.GOMAXPROCS(0),

		CacheHits:   cache.Hits,
		CacheMisses: cache.Misses,
	}
	if candidateMicros > 0 {
		doc.EpochsPerSec = 1e6 * float64(fw.HP.Epochs) / candidateMicros
	}
	if warmMillis > 0 {
		doc.WarmSpeedup = coldMillis / warmMillis
	}
	if artifactMillis > 0 {
		doc.ArtifactSpeedup = jsonMillis / artifactMillis
	}
	if total := cache.Hits + cache.Misses; total > 0 {
		doc.CacheHitRate = float64(cache.Hits) / float64(total)
	}
	if doc.WarmBuilds != 0 {
		return fmt.Errorf("warm start executed %d offline builds, want 0 — stage artifacts not reused", doc.WarmBuilds)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchservice: cold %.0fms -> warm %.0fms (%.1fx), select avg %.0fms, cache hit rate %.2f -> %s\n",
		doc.ColdBuildMillis, doc.WarmStartMillis, doc.WarmSpeedup, doc.SelectMillisAvg, doc.CacheHitRate, out)
	fmt.Printf("benchservice: build serial %.0fms / parallel %.0fms (%.2fx on %d CPUs), mulframe %.2f GFLOP/s\n",
		doc.BuildSerialMillis, doc.BuildParallelMillis, doc.BuildSpeedup, doc.GoMaxProcs, doc.MulFrameGFLOPS)
	fmt.Printf("benchservice: lsq select %.0fus, prefilter agreement %.2f (top-%d)\n",
		doc.LSQSelectMicros, doc.PrefilterAgreement, doc.PrefilterTopK)
	return nil
}

// benchCodec times decoding the world's stage documents (matrix +
// recall) from the binary artifact codec against decoding the same
// values from JSON. Both decode from memory; min over several runs.
func benchCodec(svc *service.Service, task string, seed uint64) (artifactMillis, jsonMillis float64, err error) {
	key := fmt.Sprintf("%s-seed%d", task, seed)
	st := svc.Store()
	m, err := st.GetMatrix(key)
	if err != nil {
		return 0, 0, fmt.Errorf("bench codec: %w", err)
	}
	rec, err := st.GetRecall(key)
	if err != nil {
		return 0, 0, fmt.Errorf("bench codec: %w", err)
	}
	binMatrix, err := artifact.EncodeMatrix(m)
	if err != nil {
		return 0, 0, err
	}
	binRecall, err := artifact.EncodeRecall(rec)
	if err != nil {
		return 0, 0, err
	}
	jsonMatrix, err := json.Marshal(m)
	if err != nil {
		return 0, 0, err
	}
	jsonRecall, err := json.Marshal(rec)
	if err != nil {
		return 0, 0, err
	}

	const runs = 9
	artifactMillis = minOver(runs, func() error {
		if _, err := artifact.DecodeMatrix(binMatrix); err != nil {
			return err
		}
		_, err := artifact.DecodeRecall(binRecall)
		return err
	}, &err)
	if err != nil {
		return 0, 0, err
	}
	jsonMillis = minOver(runs, func() error {
		var m2 perfmatrix.Matrix
		if err := json.Unmarshal(jsonMatrix, &m2); err != nil {
			return err
		}
		var r2 recall.Artifact
		return json.Unmarshal(jsonRecall, &r2)
	}, &err)
	if err != nil {
		return 0, 0, err
	}
	return artifactMillis, jsonMillis, nil
}

// minOver returns the fastest of n timed executions of fn in
// milliseconds, recording the first failure in *errOut.
func minOver(n int, fn func() error, errOut *error) float64 {
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			*errOut = err
			return 0
		}
		if ms := millisSince(start); ms < best {
			best = ms
		}
	}
	return best
}

func millisSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }
