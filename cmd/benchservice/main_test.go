package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"twophase/internal/datahub"
)

// TestRunEmitsDocument runs the whole benchmark at tiny sizes and checks
// the emitted JSON is well-formed and internally consistent — warm starts
// must execute zero offline builds and beat the cold build.
func TestRunEmitsDocument(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := run(out, datahub.TaskNLP, 42, 2, datahub.Sizes{Train: 60, Val: 40, Test: 48}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted document is not JSON: %v\n%s", err, data)
	}
	if doc.ColdBuildMillis <= 0 || doc.WarmStartMillis <= 0 {
		t.Fatalf("missing timings: %+v", doc)
	}
	if doc.WarmBuilds != 0 {
		t.Fatalf("warm start ran %d builds", doc.WarmBuilds)
	}
	if doc.WarmStartMillis >= doc.ColdBuildMillis {
		t.Fatalf("warm start (%vms) not faster than cold build (%vms)", doc.WarmStartMillis, doc.ColdBuildMillis)
	}
	if doc.SelectMillisAvg <= 0 || doc.SelectEpochs <= 0 {
		t.Fatalf("missing selection metrics: %+v", doc)
	}
	if doc.ArtifactLoadMillis <= 0 || doc.JSONLoadMillis <= 0 || doc.BuildMillis != doc.ColdBuildMillis {
		t.Fatalf("missing codec metrics: %+v", doc)
	}
	// The binary codec is the reason warm start stopped JSON-decoding the
	// world: it must beat JSON by a wide margin (the measured gap at
	// these sizes is ~10x; 5x is the regression floor).
	if doc.ArtifactSpeedup < 5 {
		t.Fatalf("artifact decode only %.1fx faster than JSON, want >= 5x: %+v", doc.ArtifactSpeedup, doc)
	}
	if doc.CacheHitRate <= 0 || doc.CacheHitRate >= 1 {
		// One miss (the warm assemble) plus one hit per selection.
		t.Fatalf("cache hit rate %v out of (0,1): %+v", doc.CacheHitRate, doc)
	}
	if doc.BuildSerialMillis <= 0 || doc.BuildParallelMillis <= 0 || doc.BuildSpeedup <= 0 {
		t.Fatalf("missing parallel-build metrics: %+v", doc)
	}
	if doc.MulFrameGFLOPS <= 0 || doc.GoMaxProcs < 1 {
		t.Fatalf("missing kernel metrics: %+v", doc)
	}
}
