package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"twophase/internal/api"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/service"
)

var testSizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

func decode(t *testing.T, buf *bytes.Buffer) api.SelectResponse {
	t.Helper()
	var doc api.SelectResponse
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	return doc
}

func TestRunBatch(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		task:    datahub.TaskNLP,
		targets: "tweet_eval, super_glue/boolq",
		seed:    42,
		sizes:   testSizes,
	}
	if err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, &buf)
	if doc.APIVersion != api.Version || doc.Task != datahub.TaskNLP || len(doc.Results) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Strategy != string(core.StrategyTwoPhase) {
		t.Fatalf("default strategy is %q, want two-phase", doc.Strategy)
	}
	for _, tr := range doc.Results {
		if tr.Error != "" {
			t.Fatalf("target %s errored: %s", tr.Target, tr.Error)
		}
		if tr.Winner == "" || tr.TestAcc <= 0 || tr.Epochs <= 0 {
			t.Fatalf("incomplete result: %+v", tr)
		}
	}
	if doc.Results[0].Target != "tweet_eval" {
		t.Fatalf("results not in request order: %+v", doc.Results)
	}
	if doc.Failed != 0 || doc.TotalEpochs <= 0 || doc.OfflineBuilds != 1 {
		t.Fatalf("batch totals wrong: %+v", doc)
	}
	// The batch total is the sum of this request's per-target ledgers.
	var sum float64
	for _, tr := range doc.Results {
		sum += tr.Epochs
	}
	if doc.TotalEpochs != sum {
		t.Fatalf("total_epochs %v != per-result sum %v", doc.TotalEpochs, sum)
	}
}

func TestRunAllWithStore(t *testing.T) {
	dir := t.TempDir()
	cfg := config{task: datahub.TaskNLP, all: true, seed: 42, storeDir: dir, sizes: testSizes}

	var first bytes.Buffer
	if err := run(context.Background(), &first, cfg); err != nil {
		t.Fatal(err)
	}
	docA := decode(t, &first)
	if docA.OfflineBuilds != 1 {
		t.Fatalf("first run built %d frameworks, want 1", docA.OfflineBuilds)
	}

	// Second process over the same store serves without rebuilding and
	// returns identical selections.
	var second bytes.Buffer
	if err := run(context.Background(), &second, cfg); err != nil {
		t.Fatal(err)
	}
	docB := decode(t, &second)
	if docB.OfflineBuilds != 0 {
		t.Fatalf("second run built %d frameworks, want 0 (store hit)", docB.OfflineBuilds)
	}
	if len(docA.Results) != len(docB.Results) {
		t.Fatalf("target counts differ: %d vs %d", len(docA.Results), len(docB.Results))
	}
	for i := range docA.Results {
		if !reflect.DeepEqual(docA.Results[i], docB.Results[i]) {
			t.Fatalf("store-served selection differs at %s:\n%+v\nvs\n%+v",
				docA.Results[i].Target, docA.Results[i], docB.Results[i])
		}
	}
}

// TestCLIMatchesHTTP is the contract-sharing guarantee: the same request
// served in process and through a real HTTP server round-trip must yield
// bit-identical selection results for the same seed.
func TestCLIMatchesHTTP(t *testing.T) {
	svc, err := service.New(service.Options{Base: core.Options{Seed: 42, Sizes: testSizes}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.NewHandler(api.NewDispatcher(svc, 42)))
	defer ts.Close()

	cfg := config{task: datahub.TaskNLP, targets: "tweet_eval,super_glue/boolq", seed: 42, sizes: testSizes}
	var local bytes.Buffer
	if err := run(context.Background(), &local, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.server = ts.URL
	var remote bytes.Buffer
	if err := run(context.Background(), &remote, cfg); err != nil {
		t.Fatal(err)
	}
	docL, docR := decode(t, &local), decode(t, &remote)
	if !reflect.DeepEqual(docL.Results, docR.Results) {
		t.Fatalf("HTTP-served results differ from in-process:\n%+v\nvs\n%+v", docL.Results, docR.Results)
	}
	if docL.TotalEpochs != docR.TotalEpochs || docL.Failed != docR.Failed {
		t.Fatalf("HTTP totals differ: %+v vs %+v", docL, docR)
	}
}

func TestRunStrategyFlag(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{task: datahub.TaskNLP, targets: "tweet_eval", strategy: "sh", seed: 42, sizes: testSizes}
	if err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, &buf)
	if doc.Strategy != string(core.StrategySH) {
		t.Fatalf("strategy %q, want sh", doc.Strategy)
	}
	if doc.Results[0].Winner == "" || doc.Results[0].Recalled != 0 {
		t.Fatalf("sh result should have a winner and no recall phase: %+v", doc.Results[0])
	}
}

// TestRunAllTargetsFailed locks in the exit contract: when every target
// in the batch fails, the document still prints (with the failed count)
// and run returns an error so the process exits nonzero.
func TestRunAllTargetsFailed(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{task: datahub.TaskNLP, targets: "no-such-a,no-such-b", seed: 42, sizes: testSizes}
	err := run(context.Background(), &buf, cfg)
	if err == nil {
		t.Fatal("run returned nil although every target failed")
	}
	doc := decode(t, &buf)
	if doc.Failed != 2 || len(doc.Results) != 2 {
		t.Fatalf("failed count %d of %d results, want 2 of 2", doc.Failed, len(doc.Results))
	}
	for _, tr := range doc.Results {
		if tr.ErrorCode != api.CodeUnknownTarget {
			t.Fatalf("error code %q, want %q: %+v", tr.ErrorCode, api.CodeUnknownTarget, tr)
		}
	}

	// A partial failure keeps exit code zero: the document reports it.
	buf.Reset()
	cfg.targets = "tweet_eval,no-such-b"
	if err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatalf("partial failure must not fail the run: %v", err)
	}
	if doc := decode(t, &buf); doc.Failed != 1 {
		t.Fatalf("failed count %d, want 1", doc.Failed)
	}
}

func TestRunListTargets(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{task: datahub.TaskNLP, listTargets: true, seed: 42, sizes: testSizes}
	if err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected the 4 NLP targets, got %d:\n%s", len(lines), buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, &bytes.Buffer{}, config{task: datahub.TaskNLP, sizes: testSizes}); err == nil {
		t.Fatal("no targets accepted")
	}
	if err := run(ctx, &bytes.Buffer{}, config{task: datahub.TaskNLP, all: true, targets: "x", sizes: testSizes}); err == nil {
		t.Fatal("-all with -targets accepted")
	}
	if err := run(ctx, &bytes.Buffer{}, config{task: "audio", all: true, sizes: testSizes}); err == nil {
		t.Fatal("unknown task accepted")
	}
	if err := run(ctx, &bytes.Buffer{}, config{task: datahub.TaskNLP, targets: "tweet_eval", strategy: "zigzag", sizes: testSizes}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	// Server-side knobs must be rejected, not silently ignored, in
	// client mode.
	if err := run(ctx, &bytes.Buffer{}, config{task: datahub.TaskNLP, targets: "x", server: "http://127.0.0.1:1", storeDir: "/tmp/x"}); err == nil {
		t.Fatal("-store accepted with -server")
	}
	if err := run(ctx, &bytes.Buffer{}, config{task: datahub.TaskNLP, targets: "x", server: "http://127.0.0.1:1", concurrency: 2}); err == nil {
		t.Fatal("-concurrency accepted with -server")
	}
}
