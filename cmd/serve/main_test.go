package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twophase/internal/datahub"
)

var testSizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

func TestRunBatch(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		task:    datahub.TaskNLP,
		targets: "tweet_eval, super_glue/boolq",
		seed:    42,
		sizes:   testSizes,
	}
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	var doc output
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if doc.Task != datahub.TaskNLP || len(doc.Targets) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	for _, tr := range doc.Targets {
		if tr.Error != "" {
			t.Fatalf("target %s errored: %s", tr.Target, tr.Error)
		}
		if tr.Winner == "" || tr.TestAcc <= 0 || tr.Epochs <= 0 {
			t.Fatalf("incomplete result: %+v", tr)
		}
	}
	if doc.Targets[0].Target != "tweet_eval" {
		t.Fatalf("results not in request order: %+v", doc.Targets)
	}
	if doc.TotalEpochs <= 0 || doc.OfflineBuilds != 1 {
		t.Fatalf("batch totals wrong: %+v", doc)
	}
}

func TestRunAllWithStore(t *testing.T) {
	dir := t.TempDir()
	cfg := config{task: datahub.TaskNLP, all: true, seed: 42, storeDir: dir, sizes: testSizes}

	var first bytes.Buffer
	if err := run(&first, cfg); err != nil {
		t.Fatal(err)
	}
	var docA output
	if err := json.Unmarshal(first.Bytes(), &docA); err != nil {
		t.Fatal(err)
	}
	if docA.OfflineBuilds != 1 {
		t.Fatalf("first run built %d frameworks, want 1", docA.OfflineBuilds)
	}

	// Second process over the same store serves without rebuilding and
	// returns identical selections.
	var second bytes.Buffer
	if err := run(&second, cfg); err != nil {
		t.Fatal(err)
	}
	var docB output
	if err := json.Unmarshal(second.Bytes(), &docB); err != nil {
		t.Fatal(err)
	}
	if docB.OfflineBuilds != 0 {
		t.Fatalf("second run built %d frameworks, want 0 (store hit)", docB.OfflineBuilds)
	}
	if len(docA.Targets) != len(docB.Targets) {
		t.Fatalf("target counts differ: %d vs %d", len(docA.Targets), len(docB.Targets))
	}
	for i := range docA.Targets {
		if docA.Targets[i] != docB.Targets[i] {
			t.Fatalf("store-served selection differs at %s:\n%+v\nvs\n%+v",
				docA.Targets[i].Target, docA.Targets[i], docB.Targets[i])
		}
	}
}

func TestRunListTargets(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{task: datahub.TaskNLP, listTargets: true, seed: 42, sizes: testSizes}
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected the 4 NLP targets, got %d:\n%s", len(lines), buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, config{task: datahub.TaskNLP, sizes: testSizes}); err == nil {
		t.Fatal("no targets accepted")
	}
	if err := run(&bytes.Buffer{}, config{task: datahub.TaskNLP, all: true, targets: "x", sizes: testSizes}); err == nil {
		t.Fatal("-all with -targets accepted")
	}
	if err := run(&bytes.Buffer{}, config{task: "audio", all: true, sizes: testSizes}); err == nil {
		t.Fatal("unknown task accepted")
	}
}
