// Command serve runs batched selections through the versioned v1 API
// contract — the same request/response types the HTTP server speaks — and
// prints one api.SelectResponse JSON document. By default it serves in
// process (building or store-loading the offline framework itself); with
// -server it becomes a thin client of a running apiserver, so CLI and
// HTTP selections are bit-identical for the same seed.
//
// Usage:
//
//	serve -task nlp -targets tweet_eval,super_glue/boolq [flags]
//	serve -task cv -all [flags]
//	serve -task nlp -all -server http://127.0.0.1:8080
//
// Flags:
//
//	-strategy S     selection strategy: two-phase (default), sh, bf,
//	                ensemble, or lsq (zero-epoch closed-form proxy)
//	-prefilter-top-k N  keep only the N best candidates by closed-form lsq
//	                score before the epoch-trained strategy runs (0 = off)
//	-server URL     send requests to a running apiserver instead of serving
//	                in process (-store/-concurrency/-cache-size/-warm/
//	                -seed-policy are rejected: they configure the serving
//	                process; an explicit -seed is sent as a per-request
//	                override)
//	-seed N         world seed (default 42)
//	-store DIR      artifact store; offline stage artifacts persist across
//	                runs (matrix + clustering)
//	-workers N      per-round training parallelism (0 = one per CPU)
//	-build-workers N offline-build parallelism: perf-matrix cells, recall
//	                vectors and -warm worlds share this budget (0 = one
//	                per CPU, 1 = serial; bit-identical output either way;
//	                rejected with -server — it configures the builder)
//	-concurrency N  concurrent selections in the batch (0 = one per CPU)
//	-cache-size N   max resident frameworks, LRU-evicted beyond (0 = unbounded)
//	-warm SPEC      pre-build worlds before serving, e.g. "nlp,cv:7"
//	-seed-policy P  per-request seed admission: any, fixed, allow=..., max=N
//	-deadline-ms N  anytime deadline per target (0 = none); the response
//	                reports truncated targets instead of erroring
//	-max-epochs N   training-epoch budget per target (-1 = unbounded;
//	                0 is a real zero budget)
//	-list-targets   print the family's target datasets and exit
//
// The process exits nonzero when the request itself fails or when every
// target in the batch failed (the document still prints, with the failed
// count).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"twophase/internal/api"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/service"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.task, "task", datahub.TaskNLP, `task family: "nlp" or "cv"`)
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated target dataset names")
	flag.BoolVar(&cfg.all, "all", false, "serve every target in the family's catalog")
	flag.StringVar(&cfg.strategy, "strategy", "",
		fmt.Sprintf("selection strategy: %s (default two-phase)", strings.Join(core.StrategyNames(), ", ")))
	flag.IntVar(&cfg.prefilterTopK, "prefilter-top-k", 0,
		"keep only the N best candidates by closed-form lsq score before the epoch-trained strategy runs (0 = off)")
	flag.StringVar(&cfg.server, "server", "", "apiserver base URL (default: serve in process)")
	flag.Uint64Var(&cfg.seed, "seed", 42, "world seed")
	flag.StringVar(&cfg.storeDir, "store", "", "artifact store directory (optional)")
	flag.IntVar(&cfg.workers, "workers", 0, "per-round training workers (0 = one per CPU)")
	flag.IntVar(&cfg.buildWorkers, "build-workers", 0, "offline-build parallelism (0 = one per CPU, 1 = serial)")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "concurrent selections (0 = one per CPU)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 0, "max resident frameworks, LRU-evicted beyond it (0 = unbounded)")
	flag.StringVar(&cfg.warmSpec, "warm", "", `worlds to pre-build before serving, e.g. "nlp,cv:7"`)
	flag.StringVar(&cfg.seedPolicy, "seed-policy", "any", "per-request seed admission: any, fixed, allow=..., max=N")
	flag.Int64Var(&cfg.deadlineMS, "deadline-ms", 0, "anytime deadline per target in ms (0 = none; truncates, never cancels)")
	flag.IntVar(&cfg.maxEpochs, "max-epochs", -1, "training-epoch budget per target (-1 = unbounded; 0 is a real zero budget)")
	flag.BoolVar(&cfg.listTargets, "list-targets", false, "list target datasets for the task and exit")
	flag.Parse()
	// Only an explicit -seed becomes a per-request override; otherwise a
	// remote apiserver keeps serving its own configured world instead of
	// being forced onto this binary's default.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			cfg.seedSet = true
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

type config struct {
	task          string
	targets       string
	all           bool
	strategy      string
	prefilterTopK int
	server        string
	seed          uint64
	seedSet       bool // -seed passed explicitly
	storeDir      string
	workers       int
	buildWorkers  int
	concurrency   int
	cacheSize     int
	warmSpec      string
	seedPolicy    string
	deadlineMS    int64
	maxEpochs     int // -1 = unbounded; >=0 sent as the max_epochs budget
	listTargets   bool
	sizes         datahub.Sizes // test hook; zero means datahub defaults
}

// newAPI picks the transport: a remote apiserver when -server is set,
// otherwise an in-process dispatcher over a freshly built service. Both
// implement the same contract.
func newAPI(ctx context.Context, cfg config) (api.API, error) {
	if cfg.server != "" {
		// These knobs configure the serving process, not a request;
		// silently ignoring them would let a user believe artifacts are
		// persisting or fan-out is bounded when neither is true.
		if cfg.storeDir != "" {
			return nil, fmt.Errorf("-store configures the serving process; not valid with -server")
		}
		if cfg.buildWorkers != 0 {
			return nil, fmt.Errorf("-build-workers configures the serving process; not valid with -server")
		}
		if cfg.concurrency != 0 {
			return nil, fmt.Errorf("-concurrency configures the serving process; not valid with -server")
		}
		if cfg.cacheSize != 0 {
			return nil, fmt.Errorf("-cache-size configures the serving process; not valid with -server")
		}
		if cfg.warmSpec != "" {
			return nil, fmt.Errorf("-warm configures the serving process; not valid with -server")
		}
		if cfg.seedPolicy != "" && cfg.seedPolicy != "any" {
			return nil, fmt.Errorf("-seed-policy configures the serving process; not valid with -server")
		}
		return api.NewClient(cfg.server, nil), nil
	}
	seeds, err := service.ParseSeedPolicy(cfg.seedPolicy)
	if err != nil {
		return nil, err
	}
	warmKeys, err := service.ParseWarmSpec(cfg.warmSpec, cfg.seed)
	if err != nil {
		return nil, err
	}
	if err := service.ValidateWarmCapacity(warmKeys, cfg.cacheSize); err != nil {
		return nil, err
	}
	svc, err := service.New(service.Options{
		Base:         core.Options{Seed: cfg.seed, Sizes: cfg.sizes},
		StoreDir:     cfg.storeDir,
		Workers:      cfg.workers,
		BuildWorkers: cfg.buildWorkers,
		Concurrency:  cfg.concurrency,
		CacheSize:    cfg.cacheSize,
		Seeds:        seeds,
	})
	if err != nil {
		return nil, err
	}
	if len(warmKeys) > 0 {
		if err := svc.Warm(ctx, warmKeys); err != nil {
			return nil, err
		}
	}
	return api.NewDispatcher(svc, cfg.seed), nil
}

func run(ctx context.Context, w io.Writer, cfg config) error {
	a, err := newAPI(ctx, cfg)
	if err != nil {
		return err
	}

	if cfg.listTargets {
		resp, err := a.Targets(ctx, cfg.task)
		if err != nil {
			return err
		}
		for _, n := range resp.Targets {
			fmt.Fprintln(w, n)
		}
		return nil
	}

	var targets []string
	switch {
	case cfg.all && cfg.targets != "":
		return fmt.Errorf("-all and -targets are mutually exclusive")
	case cfg.all:
		resp, err := a.Targets(ctx, cfg.task)
		if err != nil {
			return err
		}
		targets = resp.Targets
	case cfg.targets != "":
		for _, t := range strings.Split(cfg.targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no targets: pass -targets or -all (use -list-targets to see options)")
	}

	req := &api.SelectRequest{
		Task:    cfg.task,
		Targets: targets,
		SelectOptions: api.SelectOptions{
			Strategy:      cfg.strategy,
			Workers:       cfg.workers,
			DeadlineMS:    cfg.deadlineMS,
			PrefilterTopK: cfg.prefilterTopK,
		},
	}
	if cfg.maxEpochs >= 0 {
		me := cfg.maxEpochs
		req.MaxEpochs = &me
	}
	if cfg.seedSet {
		seed := cfg.seed
		req.Seed = &seed
	}
	resp, err := a.Select(ctx, req)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		return err
	}
	if resp.Failed > 0 && resp.Failed == len(resp.Results) {
		return fmt.Errorf("all %d targets failed", resp.Failed)
	}
	return nil
}
