// Command serve runs the concurrent selection service over one task
// family: it builds (or loads from a store) the offline framework once,
// then serves a batch of two-phase selections — an explicit target list or
// the whole target catalog — in parallel, emitting one JSON document with
// per-target winners, accuracies and epoch costs plus batch totals.
//
// Usage:
//
//	serve -task nlp -targets tweet_eval,super_glue/boolq [flags]
//	serve -task cv -all [flags]
//
// Flags:
//
//	-seed N         world seed (default 42)
//	-store DIR      artifact store; offline matrices persist across runs
//	-workers N      per-round training parallelism (0 = one per CPU)
//	-concurrency N  concurrent selections in the batch (0 = one per CPU)
//	-list-targets   print the family's target datasets and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/service"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.task, "task", datahub.TaskNLP, `task family: "nlp" or "cv"`)
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated target dataset names")
	flag.BoolVar(&cfg.all, "all", false, "serve every target in the family's catalog")
	flag.Uint64Var(&cfg.seed, "seed", 42, "world seed")
	flag.StringVar(&cfg.storeDir, "store", "", "artifact store directory (optional)")
	flag.IntVar(&cfg.workers, "workers", 0, "per-round training workers (0 = one per CPU)")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "concurrent selections (0 = one per CPU)")
	flag.BoolVar(&cfg.listTargets, "list-targets", false, "list target datasets for the task and exit")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

type config struct {
	task        string
	targets     string
	all         bool
	seed        uint64
	storeDir    string
	workers     int
	concurrency int
	listTargets bool
	sizes       datahub.Sizes // test hook; zero means datahub defaults
}

// targetResult is the per-target slice of the JSON output.
type targetResult struct {
	Target   string  `json:"target"`
	Winner   string  `json:"winner,omitempty"`
	ValAcc   float64 `json:"val_acc,omitempty"`
	TestAcc  float64 `json:"test_acc,omitempty"`
	Epochs   float64 `json:"epochs,omitempty"`
	Recalled int     `json:"recalled,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// output is the whole JSON document.
type output struct {
	Task          string         `json:"task"`
	Seed          uint64         `json:"seed"`
	Targets       []targetResult `json:"targets"`
	TotalEpochs   float64        `json:"total_epochs"`
	OfflineBuilds int            `json:"offline_builds"`
	WallMillis    int64          `json:"wall_ms"`
}

func run(w io.Writer, cfg config) error {
	svc, err := service.New(service.Options{
		Base:        core.Options{Seed: cfg.seed, Sizes: cfg.sizes},
		StoreDir:    cfg.storeDir,
		Workers:     cfg.workers,
		Concurrency: cfg.concurrency,
	})
	if err != nil {
		return err
	}

	if cfg.listTargets {
		names, err := svc.Targets(cfg.task)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(w, n)
		}
		return nil
	}

	var targets []string
	switch {
	case cfg.all && cfg.targets != "":
		return fmt.Errorf("-all and -targets are mutually exclusive")
	case cfg.all:
		targets, err = svc.Targets(cfg.task)
		if err != nil {
			return err
		}
	case cfg.targets != "":
		for _, t := range strings.Split(cfg.targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no targets: pass -targets or -all (use -list-targets to see options)")
	}

	start := time.Now()
	results, err := svc.SelectAll(cfg.task, targets)
	if err != nil {
		return err
	}
	doc := output{
		Task:          cfg.task,
		Seed:          cfg.seed,
		Targets:       make([]targetResult, len(results)),
		OfflineBuilds: svc.Builds(),
		WallMillis:    time.Since(start).Milliseconds(),
	}
	cost := svc.Cost()
	doc.TotalEpochs = cost.Total()
	for i, r := range results {
		tr := targetResult{Target: r.Target}
		if r.Err != nil {
			tr.Error = r.Err.Error()
		} else {
			tr.Winner = r.Report.Outcome.Winner
			tr.ValAcc = r.Report.Outcome.WinnerVal
			tr.TestAcc = r.Report.Outcome.WinnerTest
			tr.Epochs = r.Report.TotalEpochs()
			tr.Recalled = len(r.Report.Recall.Recalled)
		}
		doc.Targets[i] = tr
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
