// Command apiserver serves the v1 selection API over HTTP: versioned
// selection requests with per-request strategy choice, target catalogs,
// health and stats, backed by the concurrent selection service (cached
// frameworks, singleflight offline builds, bounded fan-out).
//
// Endpoints:
//
//	POST /v1/select                  single or batch selection
//	GET  /v1/tasks/{task}/targets    target catalog of a task family
//	GET  /v1/healthz                 liveness + readiness (503 while warming)
//	GET  /v1/stats                   builds, cache, cumulative cost
//
// Usage:
//
//	apiserver -addr :8080 [flags]
//
// Flags:
//
//	-addr HOST:PORT      listen address (default :8080)
//	-seed N              default world seed (default 42)
//	-store DIR           artifact store; offline stage artifacts persist
//	                     across runs (matrix + clustering)
//	-workers N           per-round training parallelism (0 = one per CPU)
//	-build-workers N     offline-build parallelism: perf-matrix cells,
//	                     recall vectors and concurrent -warm worlds all
//	                     share this budget (0 = one per CPU; 1 = serial
//	                     builds; output is bit-identical either way)
//	-concurrency N       concurrent selections per batch (0 = one per CPU)
//	-cache-size N        max resident frameworks, LRU-evicted beyond it
//	                     (0 = unbounded)
//	-warm SPEC           pre-build worlds before reporting ready, e.g.
//	                     "nlp" or "nlp,cv:7" (task at the base seed, or
//	                     task:seed); healthz answers 503 until done; with
//	                     -backends, only the worlds this backend owns on
//	                     the ring are warmed (fleet cold start builds each
//	                     world once per replica, not once per backend)
//	-backends URLS       the fleet's backend base URLs, comma-separated
//	                     and identical on every backend (the gateway's
//	                     -backends); enables ring-aware warmup and peer
//	                     artifact fetch over GET /v1/artifacts
//	-self URL            this backend's own entry in -backends (required
//	                     with -backends)
//	-replicas N          ring owners per world; must match the gateway
//	                     (default 2)
//	-vnodes N            virtual ring nodes per backend; must match the
//	                     gateway (default 64)
//	-seed-policy P       admission policy for per-request seeds: any
//	                     (default), fixed, allow=1,7,42, or max=N
//	-instance ID         instance id stamped on responses as X-Instance-Id
//	                     (default: the bound listen address); the sharding
//	                     gateway uses it to report and assert routing
//	-pprof-addr ADDR     serve net/http/pprof on a dedicated listener
//	                     (e.g. 127.0.0.1:6060; empty = disabled)
//	-train/-val/-test N  split sizes (0 = paper defaults; set all or none)
//	-shutdown-grace D    drain window after SIGTERM/SIGINT (default 15s)
//	-fault-schedule S    deterministic fault-injection schedule, e.g.
//	                     "seed=7;store.write:torn@0.5#3;handler:panic#1"
//	                     (empty = TWOPHASE_FAULT_SCHEDULE env, empty = off;
//	                     see internal/faultinject)
//	-rate R              per-client token refill, req/s (0 = no rate
//	                     limiting); refusals are 429 rate_limited
//	-burst N             per-client bucket capacity (0 = max(rate, 1))
//	-inflight N          max concurrently admitted selections
//	                     (0 = unlimited); excess requests queue
//	-queue N             max queued requests past the inflight bound;
//	                     beyond it requests shed as 503 overloaded
//
// On SIGTERM or SIGINT the server stops accepting connections and drains
// in-flight selections for the grace window; selections still running
// after it are aborted through context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"slices"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"twophase/internal/admission"
	"twophase/internal/api"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/faultinject"
	"twophase/internal/service"
	"twophase/internal/shard"
)

type config struct {
	addr          string
	seed          uint64
	storeDir      string
	workers       int
	buildWorkers  int
	concurrency   int
	cacheSize     int
	warmSpec      string
	backends      string
	self          string
	replicas      int
	vnodes        int
	seedPolicy    string
	instance      string
	pprofAddr     string
	sizes         datahub.Sizes
	shutdownGrace time.Duration
	rate          float64
	burst         float64
	inflight      int
	queue         int
	faultSchedule string
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Uint64Var(&cfg.seed, "seed", 42, "default world seed")
	flag.StringVar(&cfg.storeDir, "store", "", "artifact store directory (optional)")
	flag.IntVar(&cfg.workers, "workers", 0, "per-round training workers (0 = one per CPU)")
	flag.IntVar(&cfg.buildWorkers, "build-workers", 0, "offline-build parallelism (0 = one per CPU, 1 = serial)")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "concurrent selections per batch (0 = one per CPU)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 0, "max resident frameworks, LRU-evicted beyond it (0 = unbounded)")
	flag.StringVar(&cfg.warmSpec, "warm", "", `worlds to pre-build before reporting ready, e.g. "nlp,cv:7"`)
	flag.StringVar(&cfg.backends, "backends", "", "fleet backend base URLs (comma-separated, same list as the gateway)")
	flag.StringVar(&cfg.self, "self", "", "this backend's entry in -backends")
	flag.IntVar(&cfg.replicas, "replicas", shard.DefaultReplicas, "ring owners per world (must match the gateway)")
	flag.IntVar(&cfg.vnodes, "vnodes", shard.DefaultVNodes, "virtual ring nodes per backend (must match the gateway)")
	flag.StringVar(&cfg.seedPolicy, "seed-policy", "any", "per-request seed admission: any, fixed, allow=..., max=N")
	flag.StringVar(&cfg.instance, "instance", "", "instance id for the X-Instance-Id header (default: bound address)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.IntVar(&cfg.sizes.Train, "train", 0, "train split size (0 = default)")
	flag.IntVar(&cfg.sizes.Val, "val", 0, "val split size (0 = default)")
	flag.IntVar(&cfg.sizes.Test, "test", 0, "test split size (0 = default)")
	flag.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 15*time.Second, "drain window on SIGTERM/SIGINT")
	flag.Float64Var(&cfg.rate, "rate", 0, "per-client token refill rate, req/s (0 = no rate limiting)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-client bucket capacity (0 = max(rate, 1))")
	flag.IntVar(&cfg.inflight, "inflight", 0, "max concurrently admitted selections (0 = unlimited)")
	flag.IntVar(&cfg.queue, "queue", 0, "max queued requests past the inflight bound")
	flag.StringVar(&cfg.faultSchedule, "fault-schedule", "", "deterministic fault-injection schedule (empty = TWOPHASE_FAULT_SCHEDULE env, empty = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "apiserver:", err)
		os.Exit(1)
	}
}

// parseBackends splits and sanity-checks the -backends flag; the same
// normalization the gateway applies, so the two rings agree node-for-node.
func parseBackends(spec string) ([]string, error) {
	var out []string
	for _, b := range strings.Split(spec, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return nil, fmt.Errorf("backend %q is not an http(s) URL", b)
		}
		out = append(out, strings.TrimRight(b, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-backends is required (comma-separated base URLs)")
	}
	return out, nil
}

// run starts the server and blocks until ctx is canceled (then drains
// in-flight requests for the grace window) or the listener fails. If
// ready is non-nil the bound address is sent once the listener is up, so
// tests can bind 127.0.0.1:0.
func run(ctx context.Context, cfg config, ready chan<- string) error {
	zero := datahub.Sizes{}
	if cfg.sizes != zero && (cfg.sizes.Train <= 0 || cfg.sizes.Val <= 0 || cfg.sizes.Test <= 0) {
		return fmt.Errorf("-train, -val and -test must be set together (got %+v)", cfg.sizes)
	}
	if cfg.rate < 0 || cfg.burst < 0 || cfg.inflight < 0 || cfg.queue < 0 {
		return fmt.Errorf("-rate, -burst, -inflight and -queue must be non-negative")
	}
	if pprofAddr, err := api.StartPprof(cfg.pprofAddr); err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	} else if pprofAddr != "" {
		log.Printf("apiserver: pprof on http://%s/debug/pprof/", pprofAddr)
	}
	// A malformed schedule is a configuration error and must fail startup
	// loudly — a chaos run whose faults silently never fire would "prove"
	// invariants it did not test.
	if err := faultinject.Enable(cfg.faultSchedule); err != nil {
		return err
	}
	seeds, err := service.ParseSeedPolicy(cfg.seedPolicy)
	if err != nil {
		return err
	}
	warmKeys, err := service.ParseWarmSpec(cfg.warmSpec, cfg.seed)
	if err != nil {
		return err
	}
	// With a fleet membership list, this backend joins the same
	// consistent-hash ring the gateway routes on: warmup narrows to the
	// worlds this backend owns, and worlds missing from the local store
	// are fetched from their ring owners before falling back to a build.
	var fetch service.ArtifactFetcher
	if cfg.backends != "" {
		nodes, err := parseBackends(cfg.backends)
		if err != nil {
			return err
		}
		self := strings.TrimRight(strings.TrimSpace(cfg.self), "/")
		if !slices.Contains(nodes, self) {
			return fmt.Errorf("-self %q must be one of -backends %v", cfg.self, nodes)
		}
		if cfg.replicas <= 0 {
			return fmt.Errorf("-replicas must be positive (got %d)", cfg.replicas)
		}
		ring, err := shard.NewRing(nodes, cfg.vnodes)
		if err != nil {
			return err
		}
		warmKeys = shard.OwnedKeys(warmKeys, ring, self, cfg.replicas)
		if len(nodes) > 1 {
			fetch = shard.NewArtifactFetcher(ring, self, cfg.replicas, nil)
		}
	}
	if err := service.ValidateWarmCapacity(warmKeys, cfg.cacheSize); err != nil {
		return err
	}
	svc, err := service.New(service.Options{
		Base:         core.Options{Seed: cfg.seed, Sizes: cfg.sizes},
		StoreDir:     cfg.storeDir,
		Workers:      cfg.workers,
		BuildWorkers: cfg.buildWorkers,
		Concurrency:  cfg.concurrency,
		CacheSize:    cfg.cacheSize,
		Seeds:        seeds,
		Fetch:        fetch,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The listener accepts immediately, but healthz reports "warming"
	// (503) until the configured worlds are resident, so load balancers
	// hold traffic while the expensive offline phase runs. A failed
	// warmup is a configuration error and brings the server down (the
	// cancel cause survives the graceful drain and is returned below).
	var warmed atomic.Bool
	warmed.Store(len(warmKeys) == 0)
	ctx, fail := context.WithCancelCause(ctx)
	defer fail(nil)
	if len(warmKeys) > 0 {
		go func() {
			start := time.Now()
			results, err := svc.WarmResults(ctx, warmKeys)
			for _, r := range results {
				if r.Err != nil {
					log.Printf("apiserver: warm %s failed after %s: %v", r.Key, r.Duration.Round(time.Millisecond), r.Err)
					continue
				}
				log.Printf("apiserver: warm %s built in %s", r.Key, r.Duration.Round(time.Millisecond))
			}
			if err != nil {
				fail(fmt.Errorf("warmup: %w", err))
				return
			}
			warmed.Store(true)
			log.Printf("apiserver: warmup done, %d worlds resident in %s (%s); reporting ready",
				len(warmKeys), time.Since(start).Round(time.Millisecond), cfg.warmSpec)
		}()
	}
	// Every response names its serving process, so a routing tier (and
	// its tests) can assert which backend actually served a request.
	instance := cfg.instance
	if instance == "" {
		instance = ln.Addr().String()
	}
	var ctrl *admission.Controller
	if cfg.rate > 0 || cfg.inflight > 0 {
		ctrl = admission.NewController(admission.Options{
			Rate:        cfg.rate,
			Burst:       cfg.burst,
			MaxInflight: cfg.inflight,
			MaxQueue:    cfg.queue,
		})
	}
	hopts := api.HandlerOptions{
		Ready:     warmed.Load,
		Instance:  instance,
		Admission: ctrl,
	}
	// Guard the typed nil: a storeless service must leave the interface
	// nil so the artifact route stays unmounted.
	if st := svc.Store(); st != nil {
		hopts.Artifacts = st
	}
	handler := api.NewHandlerWith(api.NewDispatcher(svc, cfg.seed), hopts)
	log.Printf("apiserver: serving v1 selection API on %s (instance %s, seed %d, cache-size %d, seed-policy %s)",
		ln.Addr(), instance, cfg.seed, cfg.cacheSize, seeds)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	err = api.ServeUntilShutdown(ctx, ln, handler, cfg.shutdownGrace)
	// A warmup failure canceled the context itself; it is the exit
	// error, not a clean shutdown.
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	return err
}
