package main

import (
	"context"
	"errors"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/datahub"
)

// TestServerLifecycle boots a real apiserver on an ephemeral port, drives
// it through the Go client, and shuts it down gracefully.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := config{
		addr:          "127.0.0.1:0",
		seed:          42,
		sizes:         datahub.Sizes{Train: 60, Val: 40, Test: 48},
		shutdownGrace: 5 * time.Second,
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c := api.NewClient("http://"+addr, nil)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp, err := c.Select(context.Background(), &api.SelectRequest{
		Task:    datahub.TaskNLP,
		Targets: []string{"tweet_eval"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Winner == "" || resp.Failed != 0 {
		t.Fatalf("bad selection over live server: %+v", resp)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.OfflineBuilds != 1 || st.TotalEpochs <= 0 {
		t.Fatalf("stats over live server: %+v", st)
	}

	// Signal-equivalent shutdown: cancel the run context and expect a
	// clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within the grace window")
	}
}

func TestRunRejectsPartialSizes(t *testing.T) {
	err := run(context.Background(), config{addr: "127.0.0.1:0", sizes: datahub.Sizes{Train: 60}}, nil)
	if err == nil {
		t.Fatal("partial split sizes accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	base := config{addr: "127.0.0.1:0", seed: 42, sizes: datahub.Sizes{Train: 60, Val: 40, Test: 48}}
	bad := base
	bad.seedPolicy = "zigzag"
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("bad seed policy accepted")
	}
	bad = base
	bad.warmSpec = "audio"
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("bad warm spec accepted")
	}
	// A warm set larger than the cache would evict warmed worlds before
	// reporting ready; reject the misconfiguration at startup.
	bad = base
	bad.warmSpec = "nlp,cv:7"
	bad.cacheSize = 1
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("warm set larger than cache accepted")
	}
	// The fleet-membership flags are validated before anything binds:
	// -self must name an entry of -backends, the URLs must parse, and
	// the replica count must be positive.
	bad = base
	bad.backends = "http://h1:8080,http://h2:8080"
	bad.self = "http://h3:8080"
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("-self outside -backends accepted")
	}
	bad = base
	bad.backends = "h1:8080"
	bad.self = "h1:8080"
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("non-URL backend accepted")
	}
	bad = base
	bad.backends = "http://h1:8080,http://h2:8080"
	bad.self = "http://h1:8080"
	bad.replicas = -1
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("negative -replicas accepted")
	}
}

// TestWarmupLifecycle boots the server with -warm and a bounded cache:
// healthz flips to ready only once the configured world is resident, the
// first request hits the warm framework (no extra build), and /v1/stats
// reports the cache.
func TestWarmupLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{
		addr:          "127.0.0.1:0",
		seed:          42,
		cacheSize:     2,
		warmSpec:      "nlp",
		seedPolicy:    "fixed",
		sizes:         datahub.Sizes{Train: 60, Val: 40, Test: 48},
		shutdownGrace: 5 * time.Second,
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never started listening")
	}
	c := api.NewClient("http://"+addr, nil)

	// The listener is up before the warmup finishes; poll until healthz
	// reports ready (Health errors on the 503 "warming" response).
	deadline := time.After(30 * time.Second)
	for {
		if err := c.Health(context.Background()); err == nil {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server died during warmup: %v", err)
		case <-deadline:
			t.Fatal("server never reported ready")
		case <-time.After(50 * time.Millisecond):
		}
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.OfflineBuilds != 1 || st.Cache.Resident != 1 || st.Cache.Capacity != 2 {
		t.Fatalf("stats after warmup: %+v", st)
	}
	resp, err := c.Select(context.Background(), &api.SelectRequest{
		Task:    datahub.TaskNLP,
		Targets: []string{"tweet_eval"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Winner == "" || resp.OfflineBuilds != 1 {
		t.Fatalf("warm request rebuilt or failed: %+v", resp)
	}
	// The fixed seed policy holds over the wire: 403 with the sentinel.
	seed := uint64(7)
	if _, err := c.Select(context.Background(), &api.SelectRequest{
		Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, SelectOptions: api.SelectOptions{Seed: &seed},
	}); !errors.Is(err, api.ErrSeedRejected) {
		t.Fatalf("live server seed rejection: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within the grace window")
	}
}

// TestWarmupFailureIsFatal: a warm spec the admission policy rejects is a
// configuration error; the server exits nonzero instead of serving
// half-configured.
func TestWarmupFailureIsFatal(t *testing.T) {
	ctx := context.Background()
	cfg := config{
		addr:          "127.0.0.1:0",
		seed:          42,
		warmSpec:      "nlp:7",
		seedPolicy:    "fixed",
		sizes:         datahub.Sizes{Train: 60, Val: 40, Test: 48},
		shutdownGrace: time.Second,
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rejected warmup did not bring the server down")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server kept running after warmup failure")
	}
}
