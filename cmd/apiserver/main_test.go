package main

import (
	"context"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/datahub"
)

// TestServerLifecycle boots a real apiserver on an ephemeral port, drives
// it through the Go client, and shuts it down gracefully.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := config{
		addr:          "127.0.0.1:0",
		seed:          42,
		sizes:         datahub.Sizes{Train: 60, Val: 40, Test: 48},
		shutdownGrace: 5 * time.Second,
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c := api.NewClient("http://"+addr, nil)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp, err := c.Select(context.Background(), &api.SelectRequest{
		Task:    datahub.TaskNLP,
		Targets: []string{"tweet_eval"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Winner == "" || resp.Failed != 0 {
		t.Fatalf("bad selection over live server: %+v", resp)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.OfflineBuilds != 1 || st.TotalEpochs <= 0 {
		t.Fatalf("stats over live server: %+v", st)
	}

	// Signal-equivalent shutdown: cancel the run context and expect a
	// clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within the grace window")
	}
}

func TestRunRejectsPartialSizes(t *testing.T) {
	err := run(context.Background(), config{addr: "127.0.0.1:0", sizes: datahub.Sizes{Train: 60}}, nil)
	if err == nil {
		t.Fatal("partial split sizes accepted")
	}
}
