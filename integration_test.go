package twophase_bench

import (
	"context"

	"path/filepath"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/selection"
	"twophase/internal/store"
)

// TestOfflineArtifactsSurvivePersistence exercises the production loop the
// §VII store enables: build the offline phase once, persist it, reload it
// in a "new process", and serve an online selection from the reloaded
// matrix — results must be identical to the in-memory path.
func TestOfflineArtifactsSurvivePersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline build; skipped in -short")
	}
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMatrix("nlp", fw.Matrix); err != nil {
		t.Fatal(err)
	}

	reloaded, err := st.GetMatrix("nlp")
	if err != nil {
		t.Fatal(err)
	}
	target, err := fw.Catalog.Get("tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := recall.CoarseRecall(fw.Matrix, fw.Repo, target, fw.Recall, nil)
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := recall.CoarseRecall(reloaded, fw.Repo, target, fw.Recall, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Recalled) != len(fromDisk.Recalled) {
		t.Fatal("recall size changed after persistence")
	}
	for i := range fresh.Recalled {
		if fresh.Recalled[i] != fromDisk.Recalled[i] {
			t.Fatalf("recall order diverged at %d: %s vs %s",
				i, fresh.Recalled[i], fromDisk.Recalled[i])
		}
	}

	// Fine-selection from the reloaded matrix must also agree.
	cand, err := fw.Repo.Subset(fromDisk.Recalled)
	if err != nil {
		t.Fatal(err)
	}
	opts := selection.FineSelectOptions{
		Config: selection.Config{HP: fw.HP, Seed: fw.Seed, Salt: "two-phase"},
		Matrix: reloaded,
	}
	out, err := selection.FineSelect(context.Background(), cand.Models(), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fw.Select(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != direct.Outcome.Winner {
		t.Fatalf("winner changed after persistence: %s vs %s", out.Winner, direct.Outcome.Winner)
	}
}

// TestMatrixFilePersistenceRoundtrip covers the plain Save/Load path used
// by cmd/twophase without a store directory.
func TestMatrixFilePersistenceRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline build; skipped in -short")
	}
	fw, err := core.Build(core.Options{Task: datahub.TaskCV, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cv.json")
	if err := fw.Matrix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := perfmatrix.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range fw.Matrix.Models {
		a, err := fw.Matrix.AvgAcc(model)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.AvgAcc(model)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("avg acc changed for %s", model)
		}
	}
}

// TestCrossSeedWorldsDiffer guards against accidental seed plumbing bugs:
// different world seeds must produce genuinely different offline matrices.
func TestCrossSeedWorldsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("two offline builds; skipped in -short")
	}
	a, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 1,
		Sizes: datahub.Sizes{Train: 40, Val: 30, Test: 40}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 2,
		Sizes: datahub.Sizes{Train: 40, Val: 30, Test: 40}})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, model := range a.Matrix.Models {
		va, err := a.Matrix.AvgAcc(model)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Matrix.AvgAcc(model)
		if err != nil {
			t.Fatal(err)
		}
		if va == vb {
			same++
		}
	}
	if same == len(a.Matrix.Models) {
		t.Fatal("different seeds produced identical matrices")
	}
}
