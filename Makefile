GO ?= go
SERVER_FLAGS ?=
GATEWAY_FLAGS ?= -backends http://127.0.0.1:8080
BENCH_JSON ?= BENCH_service.json
LOADGEN_ADDR ?= http://127.0.0.1:8090
LOADGEN_FLAGS ?= -rate 100 -duration 10s -max-epochs 0
LOAD_JSON ?= BENCH_load.json
COVER_PROFILE ?= coverage.out
COVER_FLOOR ?= 70.0

# Absolute: go test runs with the package directory as cwd.
CHAOS_LOG ?= $(CURDIR)/BENCH_chaos.log

.PHONY: verify race bench bench-json bench-smoke bench-baseline fmt vet build test run-server run-gateway cover cover-check fuzz loadgen chaos chaos-smoke

# verify is the tier-1 gate: exactly what CI and the roadmap run.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector with shuffled test
# order (the serving layer is concurrent; this must stay clean and
# order-independent).
race:
	$(GO) test -race -shuffle=on ./...

# cover emits a coverage profile and enforces the floor CI gates on.
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	$(MAKE) cover-check

# cover-check gates an existing profile against the floor; CI reuses it
# on the profile its race run emits, so the gate logic exists once.
cover-check:
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	  { echo "coverage $$total% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

# fuzz smoke-runs the native fuzz targets for a few seconds each; real
# fuzzing campaigns should raise -fuzztime.
fuzz:
	$(GO) test -fuzz=FuzzSlugInjective -fuzztime=10s -run='^$$' ./internal/store
	$(GO) test -fuzz=FuzzSlugPairwise -fuzztime=10s -run='^$$' ./internal/store
	$(GO) test -fuzz=FuzzMulFrameMatchesMulVec -fuzztime=10s -run='^$$' ./internal/numeric
	$(GO) test -fuzz=FuzzMulFrameParallelMatchesSerial -fuzztime=10s -run='^$$' ./internal/numeric
	$(GO) test -fuzz=FuzzArtifactDecode -fuzztime=10s -run='^$$' ./internal/artifact

# bench smoke-runs every benchmark once; use `go test -bench=. -benchmem`
# for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json emits the serving layer's perf trajectory (cold vs warm-start
# build time, offline-build + epoch throughput, select latency, cache hit
# rate) as one JSON document; CI uploads it as an artifact per commit.
bench-json:
	$(GO) run ./cmd/benchservice -out $(BENCH_JSON)

# bench-smoke is the perf regression gate: re-measures the training hot
# paths and fails if they regress >20% against BENCH_baseline.json
# (calibration-scaled so slower machines don't trip it) or if the
# steady-state epoch allocates at all.
bench-smoke:
	$(GO) run ./cmd/benchsmoke -baseline BENCH_baseline.json

# bench-baseline re-records the checked-in baseline; run on an intended
# perf change and commit the result.
bench-baseline:
	$(GO) run ./cmd/benchsmoke -baseline BENCH_baseline.json -write

# run-server boots the v1 selection API on :8080; override with e.g.
# `make run-server SERVER_FLAGS='-addr :9090 -store /tmp/twophase-store'`.
run-server:
	$(GO) run ./cmd/apiserver $(SERVER_FLAGS)

# run-gateway fronts a backend fleet on :8090; point GATEWAY_FLAGS at the
# real backends, e.g. `make run-gateway GATEWAY_FLAGS='-backends
# http://h1:8080,http://h2:8080 -replicas 2'`.
run-gateway:
	$(GO) run ./cmd/gateway $(GATEWAY_FLAGS)

# loadgen replays an open-loop selection workload against a running
# endpoint (default: the gateway on :8090) and writes the latency
# percentiles + admission outcome mix to $(LOAD_JSON); point it elsewhere
# with e.g. `make loadgen LOADGEN_ADDR=http://127.0.0.1:8080
# LOADGEN_FLAGS='-rate 500 -duration 30s -deadline-ms 50'`.
loadgen:
	$(GO) run ./cmd/loadgen -addr $(LOADGEN_ADDR) -out $(LOAD_JSON) $(LOADGEN_FLAGS)

# chaos runs the full fault-injection storm suite: three seeded
# schedules against a real 3-backend fleet + gateway (separate OS
# processes), with a mid-storm SIGKILL/restart. The event log lands in
# $(CHAOS_LOG).
chaos:
	CHAOS_LOG=$(CHAOS_LOG) $(GO) test ./internal/chaos -run TestChaosStorms -count=1 -v

# chaos-smoke is the CI-sized cut: a 2-backend fleet under one short
# seeded schedule, run under the race detector.
chaos-smoke:
	CHAOS_LOG=$(CHAOS_LOG) $(GO) test ./internal/chaos -run TestChaosSmoke -count=1 -race -v

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
