GO ?= go

.PHONY: verify race bench fmt vet build test

# verify is the tier-1 gate: exactly what CI and the roadmap run.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector (the serving layer is
# concurrent; this must stay clean).
race:
	$(GO) test -race ./...

# bench smoke-runs every benchmark once; use `go test -bench=. -benchmem`
# for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
