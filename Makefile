GO ?= go
SERVER_FLAGS ?=
BENCH_JSON ?= BENCH_service.json

.PHONY: verify race bench bench-json fmt vet build test run-server

# verify is the tier-1 gate: exactly what CI and the roadmap run.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector (the serving layer is
# concurrent; this must stay clean).
race:
	$(GO) test -race ./...

# bench smoke-runs every benchmark once; use `go test -bench=. -benchmem`
# for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json emits the serving layer's perf trajectory (cold vs warm-start
# build time, select latency, cache hit rate) as one JSON document; CI
# uploads it as an artifact per commit.
bench-json:
	$(GO) run ./cmd/benchservice -out $(BENCH_JSON)

# run-server boots the v1 selection API on :8080; override with e.g.
# `make run-server SERVER_FLAGS='-addr :9090 -store /tmp/twophase-store'`.
run-server:
	$(GO) run ./cmd/apiserver $(SERVER_FLAGS)

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
