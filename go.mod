module twophase

go 1.24
